"""The tamper-proof meter (paper Section 4).

    "We augment each processor P_i with a tamper-proof meter that records
    w~_i.  The meter reports the value as dsm_0(w~_i)."

The meter is owned by the environment (it signs with the *root's* key),
not by the agent it observes — that is what "tamper-proof" means here.
It records both the unit processing time actually achieved and the amount
of load actually computed, which Phase IV needs to recompute payments
during audits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyPair
from repro.crypto.signing import SignedMessage, sign

__all__ = ["MeterReading", "TamperProofMeter"]


@dataclass(frozen=True)
class MeterReading:
    """What the meter observed for one processor's execution."""

    proc: int
    actual_rate: float  # w~_i: unit processing time actually achieved
    computed_amount: float  # alpha~_i: load units actually computed

    def as_payload(self) -> dict:
        return {
            "type": "meter",
            "proc": self.proc,
            "actual_rate": self.actual_rate,
            "computed_amount": self.computed_amount,
        }


class TamperProofMeter:
    """Environment-held meter signing readings with the root's key.

    Agents receive the signed reading ``dsm_0(w~_i)`` to embed in their
    payment proofs but cannot alter it (any alteration breaks the root's
    signature).
    """

    def __init__(self, root_key: KeyPair, *, owner: int = 0) -> None:
        if root_key.owner != owner:
            raise ValueError(
                f"the meter signs with the root's key (owner {owner}), got owner {root_key.owner}"
            )
        self._root_key = root_key
        self._readings: dict[int, MeterReading] = {}

    def record(self, proc: int, actual_rate: float, computed_amount: float) -> SignedMessage:
        """Record an observation and return the signed reading."""
        reading = MeterReading(proc=proc, actual_rate=float(actual_rate), computed_amount=float(computed_amount))
        self._readings[proc] = reading
        return sign(self._root_key, reading.as_payload())

    def reading_for(self, proc: int) -> MeterReading | None:
        """The stored reading for ``proc`` (root-side lookup during audits)."""
        return self._readings.get(proc)

    @staticmethod
    def parse(message: SignedMessage) -> MeterReading:
        """Decode a signed meter payload (verify separately)."""
        payload = message.payload
        return MeterReading(
            proc=int(payload["proc"]),
            actual_rate=float(payload["actual_rate"]),
            computed_amount=float(payload["computed_amount"]),
        )
