"""Phase II relay-consistency checks (paper Section 4, Phase II).

On receiving ``G_i``, processor ``P_i`` verifies:

1. every component's signature and expected signer;
2. that its own Phase I bid ``w_bar_i`` is echoed unaltered;
3. the local fraction reconstruction
   :math:`\\hat\\alpha_{i-1} = (D_{i-1} - D_i) / D_{i-1}`;
4. the reduction identities
   :math:`\\bar w_{i-1} = \\hat\\alpha_{i-1} w_{i-1}` and
   :math:`\\hat\\alpha_{i-1} w_{i-1} = (1-\\hat\\alpha_{i-1})(\\bar w_i + z_i)`
   (eq. 2.7 — the paper's statement writes ``w_i`` for the tail term; the
   recurrence of Algorithm 1 uses the *equivalent* time ``w_bar_i``, which
   is what the sender actually folded in, so we check against ``w_bar_i``).

Any failure is a Phase II protocol violation attributable to the sender
``P_{i-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyRegistry
from repro.exceptions import (
    ForgedSignatureError,
    InconsistentComputationError,
    MalformedMessageError,
)
from repro.protocol.messages import GMessage

__all__ = ["Phase2CheckResult", "verify_g_message"]

#: Relative tolerance for the arithmetic identities.  The honest sender
#: computes them in double precision, so the slack only needs to absorb
#: rounding — well below any profitable perturbation.
CHECK_RTOL = 1e-9


@dataclass(frozen=True)
class Phase2CheckResult:
    """Values extracted from a verified ``G_i``."""

    d_prev: float  # D_{i-1}
    d_self: float  # D_i
    w_bar_prev: float  # w_bar_{i-1}
    w_prev: float  # w_{i-1}
    w_bar_self: float  # w_bar_i (echo of own bid)
    alpha_hat_prev: float  # reconstructed alpha_hat_{i-1}


def verify_g_message(
    g: GMessage,
    *,
    registry: KeyRegistry,
    recipient: int,
    own_w_bar: float,
    z_link: float,
    rtol: float = CHECK_RTOL,
    sender: int | None = None,
    attestor: int | None = None,
) -> Phase2CheckResult:
    """Run ``P_recipient``'s full Phase II check suite on ``g``.

    ``sender``/``attestor`` default to the boundary-chain convention
    (``recipient - 1`` / ``recipient - 2``, root self-signing at the
    head); the interior-origination mechanism passes them explicitly
    because its arms relay away from a mid-chain root.

    Raises
    ------
    MalformedMessageError
        Wrong signers or payload shapes.
    ForgedSignatureError
        A component signature fails.
    InconsistentComputationError
        An arithmetic identity fails — evidence against the sender.

    Returns
    -------
    Phase2CheckResult
        The extracted values on success.
    """
    i = recipient
    if sender is None:
        sender = i - 1
    if attestor is None:
        attestor = max(sender - 1, 0)  # the root self-signs in G_1

    expected_signers = {
        "d_prev": attestor,
        "d_self": sender,
        "w_bar_prev": attestor,
        "w_prev": sender,
        "w_bar_self": sender,
    }
    expected_types = {
        "d_prev": "D",
        "d_self": "D",
        "w_bar_prev": "w_bar",
        "w_prev": "w",
        "w_bar_self": "w_bar",
    }
    values: dict[str, float] = {}
    for name in expected_signers:
        component = getattr(g, name)
        if component.signer != expected_signers[name]:
            raise MalformedMessageError(
                f"G_{i}.{name} signed by {component.signer}, expected {expected_signers[name]}",
                accused=sender,
            )
        if not component.verify(registry):
            raise ForgedSignatureError(f"G_{i}.{name} signature invalid")
        payload = component.payload
        if not isinstance(payload, dict) or payload.get("type") != expected_types[name]:
            raise MalformedMessageError(
                f"G_{i}.{name} has wrong payload type", accused=sender
            )
        values[name] = float(payload["value"])

    if g.w_bar_prev.payload.get("proc") != sender or g.w_prev.payload.get("proc") != sender:
        raise MalformedMessageError(f"G_{i} rate payloads name the wrong processor", accused=sender)

    d_prev, d_self = values["d_prev"], values["d_self"]
    w_bar_prev, w_prev, w_bar_self = values["w_bar_prev"], values["w_prev"], values["w_bar_self"]

    # Check 2: own bid echoed unaltered.
    if not _close(w_bar_self, own_w_bar, rtol):
        raise InconsistentComputationError(
            f"G_{i} echoes w_bar_{i}={w_bar_self}, but P_{i} bid {own_w_bar}",
            accused=sender,
        )

    if not (0.0 < d_self < d_prev <= 1.0 + rtol):
        raise InconsistentComputationError(
            f"G_{i} load shares implausible: D_{sender}={d_prev}, D_{i}={d_self}",
            accused=sender,
        )

    # Check 3: alpha_hat_{i-1} from the D-ratio.
    alpha_hat_prev = (d_prev - d_self) / d_prev

    # Check 4a: w_bar_{i-1} = alpha_hat_{i-1} * w_{i-1}  (eq. 2.4).
    if not _close(w_bar_prev, alpha_hat_prev * w_prev, rtol):
        raise InconsistentComputationError(
            f"G_{i}: w_bar_{sender}={w_bar_prev} != alpha_hat*w = {alpha_hat_prev * w_prev}",
            accused=sender,
        )

    # Check 4b: alpha_hat_{i-1} w_{i-1} = (1 - alpha_hat_{i-1})(w_bar_i + z_i)  (eq. 2.7).
    lhs = alpha_hat_prev * w_prev
    rhs = (1.0 - alpha_hat_prev) * (w_bar_self + z_link)
    if not _close(lhs, rhs, rtol):
        raise InconsistentComputationError(
            f"G_{i}: reduction identity fails ({lhs} != {rhs}) — P_{sender} miscomputed",
            accused=sender,
        )

    return Phase2CheckResult(
        d_prev=d_prev,
        d_self=d_self,
        w_bar_prev=w_bar_prev,
        w_prev=w_prev,
        w_bar_self=w_bar_self,
        alpha_hat_prev=alpha_hat_prev,
    )


def _close(a: float, b: float, rtol: float) -> bool:
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= rtol * scale
