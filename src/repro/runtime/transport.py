"""Simulated lossy transport for signed protocol messages.

The paper assumes "links and their protocols are obedient" — messages
arrive intact, exactly once, instantly.  This module is the seam where
that assumption is relaxed: a :class:`LossyTransport` wraps the delivery
of :class:`~repro.crypto.signing.SignedMessage` values (the Phase I bids
of :mod:`repro.protocol.messages` and any later runtime exchange) with
seed-deterministic **drop**, **delay**, **duplicate** and **corrupt**
faults.

Two fault sources compose:

- a :class:`TransportPolicy` of background probabilities, drawn from the
  run's rng stream (every send consumes a fixed number of draws whether
  or not a fault fires, so the stream stays aligned across outcomes);
- a *script* of per-sender deterministic faults — "drop the first two
  sends from P2", "corrupt P3's first send" — which is how
  :mod:`repro.faults` scenarios pin infrastructure faults precisely.

Corruption is physical: the delivered copy carries a flipped signature,
so the receiver's ordinary signature verification — not any
transport-special code path — rejects it (Theorem 5.2's "malformed or
inauthentic messages" clause, now triggered by infrastructure rather
than strategy).  Every send emits ``runtime.msgs_*`` counters and,
when a tracer is attached, one ``transport`` event.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.crypto.signing import SignedMessage
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer

__all__ = ["Delivery", "LossyTransport", "TransportPolicy", "TransportScript", "corrupt_signature"]


@dataclass(frozen=True)
class TransportPolicy:
    """Background fault probabilities of the simulated network.

    Attributes
    ----------
    drop, delay, duplicate, corrupt:
        Independent per-send Bernoulli probabilities.
    latency:
        Base delivery latency in simulated time units (applied to every
        copy that is delivered at all).
    delay_units:
        Extra latency added when the ``delay`` draw fires.
    """

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    latency: float = 0.0
    delay_units: float = 0.5

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")
        if self.latency < 0 or self.delay_units < 0:
            raise ValueError("latency and delay_units must be non-negative")


@dataclass
class TransportScript:
    """Deterministic faults pinned on one sender's next sends.

    ``drop_next`` sends are dropped, then ``suppress_next`` sends are
    suppressed, then ``corrupt_next`` sends are delivered corrupted,
    then ``duplicate_next`` sends are duplicated; ``delay_each`` adds a
    fixed latency to every delivered copy.  The counters decrement as
    sends happen, so "drop the first two attempts, let the third
    through" is ``TransportScript(drop_next=2)``.

    Suppression is the Byzantine sibling of a drop: a lying network
    element swallows the message *selectively*.  The receiver observes
    exactly what it observes for a drop (silence), so suppression is
    unattributable by design — it differs only in the counter/trace
    bookkeeping (``runtime.msgs_suppressed``, outcome ``"suppressed"``),
    which exists so experiments can audit what the adversary actually
    did against what the runtime could possibly have detected.
    """

    drop_next: int = 0
    suppress_next: int = 0
    corrupt_next: int = 0
    duplicate_next: int = 0
    delay_each: float = 0.0


@dataclass(frozen=True)
class Delivery:
    """One copy of a message arriving at the receiver.

    ``arrival`` is the simulated arrival time; ``corrupted`` records
    whether the transport damaged this copy (the signature will fail
    verification); ``duplicate`` marks the redundant copy of a
    duplicated send.
    """

    message: SignedMessage
    sender: int
    receiver: int
    arrival: float
    corrupted: bool = False
    duplicate: bool = False


def corrupt_signature(message: SignedMessage) -> SignedMessage:
    """A bit-flipped copy of ``message`` whose signature cannot verify.

    The first hex digit of the signature is rotated, which is guaranteed
    to change it — verification against the canonical payload bytes then
    fails exactly as for a forged message.
    """
    sig = message.signature
    flipped = format((int(sig[0], 16) + 1) % 16, "x") + sig[1:]
    return dataclasses.replace(message, signature=flipped)


class LossyTransport:
    """Delivers signed messages under policy- and script-driven faults.

    Parameters
    ----------
    policy:
        Background fault probabilities.
    rng:
        The run's transport stream.  Every :meth:`send` consumes exactly
        four uniform draws (drop, corrupt, duplicate, delay) regardless
        of which faults fire, keeping the stream aligned across
        outcomes and worker layouts.
    scripts:
        Optional per-sender :class:`TransportScript` overrides; a
        scripted fault pre-empts the probabilistic draws for that send
        (the draws are still consumed).
    tracer:
        Optional tracer; each send emits one ``transport`` event.
    """

    def __init__(
        self,
        policy: TransportPolicy | None = None,
        rng: np.random.Generator | None = None,
        *,
        scripts: dict[int, TransportScript] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.policy = policy if policy is not None else TransportPolicy()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.scripts = scripts if scripts is not None else {}
        self.tracer = tracer

    def send(
        self,
        message: SignedMessage,
        *,
        sender: int,
        receiver: int,
        at: float,
        kind: str = "bid",
    ) -> list[Delivery]:
        """Attempt delivery of ``message`` sent at simulated time ``at``.

        Returns the (possibly empty) list of :class:`Delivery` copies in
        arrival order.  A dropped send returns ``[]``; a duplicated send
        returns two copies, the redundant one one latency unit later.
        """
        registry = get_registry()
        registry.inc("runtime.msgs_sent")
        # Fixed draw order and count — see class docstring.
        u_drop = float(self.rng.random())
        u_corrupt = float(self.rng.random())
        u_dup = float(self.rng.random())
        u_delay = float(self.rng.random())

        script = self.scripts.get(sender)
        outcome = "delivered"
        dropped = suppressed = corrupted = duplicated = False
        delay = 0.0
        if script is not None and script.delay_each > 0:
            delay += script.delay_each
        if script is not None and script.drop_next > 0:
            script.drop_next -= 1
            dropped = True
        elif script is not None and script.suppress_next > 0:
            script.suppress_next -= 1
            suppressed = True
        elif script is not None and script.corrupt_next > 0:
            script.corrupt_next -= 1
            corrupted = True
        elif script is not None and script.duplicate_next > 0:
            script.duplicate_next -= 1
            duplicated = True
        else:
            dropped = u_drop < self.policy.drop
            if not dropped:
                corrupted = u_corrupt < self.policy.corrupt
                duplicated = u_dup < self.policy.duplicate
                if u_delay < self.policy.delay:
                    delay += self.policy.delay_units

        deliveries: list[Delivery] = []
        if dropped:
            outcome = "dropped"
            registry.inc("runtime.msgs_dropped")
        elif suppressed:
            outcome = "suppressed"
            registry.inc("runtime.msgs_suppressed")
        else:
            payload = corrupt_signature(message) if corrupted else message
            arrival = at + self.policy.latency + delay
            # Simulated end-to-end latency of the first copy; a latency
            # histogram (p50/p95/p99 in perf reports), never the trace.
            registry.observe("runtime.delivery_delay_sim", arrival - at)
            deliveries.append(
                Delivery(payload, sender, receiver, arrival, corrupted=corrupted)
            )
            if corrupted:
                outcome = "corrupted"
                registry.inc("runtime.msgs_corrupted")
            if delay > 0:
                registry.inc("runtime.msgs_delayed")
            if duplicated:
                outcome = outcome + "+duplicate"
                registry.inc("runtime.msgs_duplicated")
                deliveries.append(
                    Delivery(
                        payload,
                        sender,
                        receiver,
                        arrival + self.policy.latency + 1.0,
                        corrupted=corrupted,
                        duplicate=True,
                    )
                )
        if self.tracer is not None:
            self.tracer.event(
                "transport",
                t0=at,
                sender=sender,
                receiver=receiver,
                msg_kind=kind,
                outcome=outcome,
                copies=len(deliveries),
                delay=delay,
            )
        return deliveries
