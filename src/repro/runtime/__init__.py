"""Crash-fault-tolerant protocol runtime.

The mechanism layer assumes obedient infrastructure: messages arrive
intact and processors stay up.  This package is where that assumption is
relaxed — a simulated lossy transport over the signed protocol messages
(:mod:`repro.runtime.transport`), sim-time timeout/retry/backoff policy
(:mod:`repro.runtime.retry`), a resilient session with crash detection
and mid-run re-allocation over survivors (:mod:`repro.runtime.session`),
and a checkpoint journal for the experiment runner
(:mod:`repro.runtime.checkpoint`).
"""

from repro.runtime.checkpoint import CheckpointJournal, task_key
from repro.runtime.retry import RetryExhausted, RetryPolicy, backoff_schedule, retry_async
from repro.runtime.session import (
    BYZANTINE_KINDS,
    INFRASTRUCTURE_KINDS,
    ResilientOutcome,
    run_resilient,
)
from repro.runtime.transport import (
    Delivery,
    LossyTransport,
    TransportPolicy,
    TransportScript,
    corrupt_signature,
)

__all__ = [
    "BYZANTINE_KINDS",
    "CheckpointJournal",
    "Delivery",
    "INFRASTRUCTURE_KINDS",
    "LossyTransport",
    "ResilientOutcome",
    "RetryExhausted",
    "RetryPolicy",
    "TransportPolicy",
    "TransportScript",
    "backoff_schedule",
    "corrupt_signature",
    "retry_async",
    "run_resilient",
    "task_key",
]
