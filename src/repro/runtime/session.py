"""Crash-fault-tolerant protocol runtime: lossy setup, crash detection,
mid-run re-allocation over survivors.

The mechanism layer (:mod:`repro.mechanism.dls_lbl`) assumes the
infrastructure works: messages arrive, processors stay up.  A
:func:`run_resilient` session re-runs the same DLT schedule under
*infrastructure* faults — the strategic incentive machinery is untouched
(all agents here are honest); what breaks is the network and the
hardware:

1. **Setup (Phase I analogue).**  Every processor's signed bid must
   reach the root over a :class:`~repro.runtime.transport.LossyTransport`.
   The root retries each exchange on a
   :class:`~repro.runtime.retry.RetryPolicy` deadline schedule
   (exponential backoff, jitter from the run's own rng stream).
   Corrupted copies fail ordinary signature verification and are
   rejected — each rejection files a grievance record (the root cannot
   distinguish line noise from tampering, so the evidence is kept) and
   the exchange continues to the retransmission.  A processor whose
   every attempt is lost is declared *unresponsive* and excluded before
   allocation.

2. **Allocation.**  The DLT program is solved over the *live* chain by
   :func:`~repro.dlt.linear.solve_linear_boundary` with dead interior
   positions bridged: the paper's front-end model puts relaying in
   obedient network hardware, so a dead CPU still forwards — the link
   time past it is the sum of the two links it sat between, and its load
   share is zero.

3. **Execution epochs.**  Phase III is simulated by
   :func:`~repro.sim.linear_sim.simulate_linear_chain`.  A ``crash_exec``
   fault kills its target partway through the target's compute window;
   the root detects the silence after ``detection_timeout`` sim-time
   units, marks the processor dead, re-solves the allocation of the
   *unfinished* load over the survivors, and distributes it in a new
   epoch.  Epochs repeat until no live processor crashes.  The makespan
   penalty relative to the fault-free allocation and every forfeited
   payment is recorded in the ledger and the trace.

4. **Settlement.**  Work-based compensation per processor (the runtime
   layer pays for metered work; the game-theoretic bonus structure lives
   one layer down and is unaffected).  A crashed processor cannot submit
   a Phase IV bill: its pre-crash work is paid and immediately forfeited
   back — both movements are explicit ledger entries, so conservation
   stays checkable and honest survivors are never fined.

Determinism: all randomness comes from rng streams derived from the
session seed, deadlines and arrivals are simulated time, and the trace
carries logical ids only — byte-identical output at any ``--jobs``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.crypto.keys import KeyRegistry
from repro.crypto.signing import sign
from repro.dlt.linear import solve_linear_boundary
from repro.mechanism.ledger import PaymentLedger
from repro.network.topology import LinearNetwork
from repro.obs.metrics import get_registry
from repro.obs.perf import span as perf_span
from repro.obs.tracer import Tracer
from repro.protocol.messages import bid_payload
from repro.runtime.retry import RetryPolicy, backoff_schedule
from repro.runtime.transport import LossyTransport, TransportPolicy, TransportScript

__all__ = ["INFRASTRUCTURE_KINDS", "ResilientOutcome", "run_resilient"]

#: Fault kinds handled by this runtime (the infrastructure layer of the
#: :data:`repro.faults.spec.FAULT_KINDS` catalog).
INFRASTRUCTURE_KINDS = ("net_drop", "net_delay", "net_dup", "msg_corrupt", "crash_exec")

#: Load below this is not worth a re-allocation epoch.
_EPS_LOAD = 1e-12


@dataclass(frozen=True)
class ResilientOutcome:
    """Everything a resilient session produced.

    ``verdicts`` classifies every injected fault as the runtime handled
    it: ``tolerated`` (absorbed with no loss of capacity), ``degraded``
    (completed, but over fewer processors / with a makespan penalty) or
    ``detected`` (rejected with evidence); ``failed`` marks a fault the
    runtime could not recover from.
    """

    completed: bool
    m: int
    dead: tuple[int, ...]
    unresponsive: tuple[int, ...]
    setup_time: float
    computed: np.ndarray
    makespan: float
    baseline_makespan: float
    retries: int
    crashes: int
    reallocations: int
    rejections: int
    grievances: list[dict[str, Any]] = field(default_factory=list)
    forfeits: dict[int, float] = field(default_factory=dict)
    epochs: list[dict[str, Any]] = field(default_factory=list)
    verdicts: list[dict[str, Any]] = field(default_factory=list)
    ledger: PaymentLedger = field(default_factory=PaymentLedger)

    @property
    def makespan_penalty(self) -> float:
        """Extra simulated time versus the fault-free allocation."""
        return self.makespan - self.baseline_makespan

    @property
    def total_computed(self) -> float:
        """Load units computed across all epochs (== W when recovered)."""
        return float(self.computed.sum())


def _fault_fields(fault: Any) -> tuple[str, int, float | None]:
    """Accept :class:`~repro.faults.spec.FaultSpec` or a plain dict."""
    if isinstance(fault, dict):
        return str(fault["kind"]), int(fault["target"]), fault.get("param")
    param = getattr(fault, "effective_param", getattr(fault, "param", None))
    return str(fault.kind), int(fault.target), param


def _bridged_chain(
    w: np.ndarray, z: np.ndarray, live: list[int]
) -> tuple[LinearNetwork, list[int]]:
    """The survivor chain: dead positions bridged by summing link times."""
    w_red = w[live]
    z_red = np.array(
        [float(z[a:b].sum()) for a, b in zip(live[:-1], live[1:])], dtype=np.float64
    )
    return LinearNetwork(w_red, z_red), live


def run_resilient(
    w: Sequence[float],
    z: Sequence[float],
    faults: Sequence[Any] = (),
    *,
    retry: RetryPolicy | None = None,
    policy: TransportPolicy | None = None,
    seed: int = 0,
    total_load: float = 1.0,
    tracer: Tracer | None = None,
    key_seed: bytes | None = b"runtime",
) -> ResilientOutcome:
    """Execute one resilient session on the chain ``(w, z)``.

    Parameters
    ----------
    w, z:
        True unit processing times ``w_0..w_m`` (the root is ``w_0``) and
        link times ``z_1..z_m``.  All processors are honest; the faults
        are infrastructure, not strategy.
    faults:
        Infrastructure fault specs (:data:`INFRASTRUCTURE_KINDS`):
        ``net_drop`` (param: sends lost before one gets through),
        ``net_delay`` (param: latency added to each delivery),
        ``net_dup`` (param: sends delivered twice),
        ``msg_corrupt`` (param: sends delivered with a damaged
        signature), ``crash_exec`` (param: fraction of the target's
        compute window after which it dies).
    retry, policy:
        Deadline/backoff policy and background transport loss rates.
    seed:
        Derives the transport and jitter rng streams; the session is a
        pure function of ``(w, z, faults, retry, policy, seed)``.
    """
    w = np.asarray(w, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    m = z.size
    if w.size != m + 1:
        raise ValueError(f"w has length {w.size}, expected {m + 1}")
    retry = retry if retry is not None else RetryPolicy()
    policy = policy if policy is not None else TransportPolicy()
    registry = get_registry()

    parsed = [_fault_fields(f) for f in faults]
    for kind, target, _ in parsed:
        if kind not in INFRASTRUCTURE_KINDS:
            raise ValueError(
                f"fault kind {kind!r} is not an infrastructure kind "
                f"{INFRASTRUCTURE_KINDS}"
            )
        if not 1 <= target <= m:
            raise ValueError(f"fault target {target} outside 1..{m}")

    scripts: dict[int, TransportScript] = {}
    crash_faults: dict[int, float] = {}
    for kind, target, param in parsed:
        script = scripts.setdefault(target, TransportScript())
        if kind == "net_drop":
            script.drop_next += int(param if param is not None else 2)
        elif kind == "msg_corrupt":
            script.corrupt_next += int(param if param is not None else 1)
        elif kind == "net_dup":
            script.duplicate_next += int(param if param is not None else 1)
        elif kind == "net_delay":
            script.delay_each += float(param if param is not None else 0.5)
        elif kind == "crash_exec":
            crash_faults[target] = float(np.clip(param if param is not None else 0.5, 0.0, 1.0))

    key_registry, keys = KeyRegistry.for_processors(m + 1, seed=key_seed)
    key_by_owner = {pair.owner: pair for pair in keys}
    transport = LossyTransport(
        policy, np.random.default_rng([seed, 1]), scripts=scripts, tracer=tracer
    )
    jitter_rng = np.random.default_rng([seed, 2])

    cm = (
        tracer.span("resilient_run", m=m, total_load=total_load, faults=len(parsed))
        if tracer is not None
        else nullcontext(None)
    )
    with perf_span("runtime"), cm as run_span:
        outcome = _run_session(
            w,
            z,
            m,
            retry,
            transport,
            jitter_rng,
            key_registry,
            key_by_owner,
            crash_faults,
            parsed,
            total_load,
            tracer,
            registry,
        )
        if run_span is not None:
            run_span.set(
                completed=outcome.completed,
                makespan=outcome.makespan,
                dead=list(outcome.dead),
                reallocations=outcome.reallocations,
            )
    return outcome


def _run_session(
    w,
    z,
    m,
    retry,
    transport,
    jitter_rng,
    key_registry,
    key_by_owner,
    crash_faults,
    parsed,
    total_load,
    tracer,
    registry,
) -> ResilientOutcome:
    ledger = PaymentLedger(tracer=tracer)

    # ---------------- Setup: collect bids over the lossy transport -------
    with perf_span("setup"):
        retries = 0
        rejections = 0
        grievances: list[dict[str, Any]] = []
        unresponsive: list[int] = []
        ready = np.zeros(m + 1)
        for i in range(1, m + 1):
            message = sign(key_by_owner[i], bid_payload(i, float(w[i])))
            timeouts = backoff_schedule(retry, jitter_rng)
            seen: set[str] = set()
            t = 0.0
            arrived: float | None = None
            for attempt, timeout in enumerate(timeouts):
                deadline = t + timeout
                for delivery in transport.send(
                    message, sender=i, receiver=0, at=t, kind="bid"
                ):
                    if delivery.arrival > deadline:
                        continue  # the root has already given up on this attempt
                    digest = delivery.message.content_digest() + delivery.message.signature
                    if digest in seen:
                        continue  # duplicate copy, discarded silently
                    seen.add(digest)
                    if not delivery.message.verify(key_registry):
                        rejections += 1
                        registry.inc("runtime.corrupt_rejected")
                        grievances.append(
                            {
                                "kind": "corrupt-message",
                                "accuser": 0,
                                "against": i,
                                "attempt": attempt,
                                "at": delivery.arrival,
                            }
                        )
                        if tracer is not None:
                            tracer.event(
                                "msg_rejected",
                                t0=delivery.arrival,
                                proc=i,
                                attempt=attempt,
                                reason="signature verification failed",
                            )
                        continue
                    arrived = delivery.arrival
                    break
                if arrived is not None:
                    break
                retries += 1
                registry.inc("runtime.retries")
                # Simulated seconds waited before this retransmit; a
                # histogram (not the trace) so backoff growth is visible
                # in perf reports without touching determinism.
                registry.observe("runtime.retry_wait_sim", float(timeout))
                if tracer is not None:
                    tracer.event("retry", t0=deadline, proc=i, attempt=attempt, timeout=timeout)
                t = deadline
            if arrived is None:
                # The last "retry" above was really the give-up decision.
                retries -= 1
                unresponsive.append(i)
                registry.inc("runtime.unresponsive")
                if tracer is not None:
                    tracer.event("unresponsive", t0=t, proc=i, attempts=len(timeouts))
            else:
                ready[i] = arrived
        setup_time = float(ready.max())

    # ---------------- Baseline: the fault-free allocation -----------------
    baseline = solve_linear_boundary(LinearNetwork(w, z))
    baseline_makespan = float(baseline.makespan) * total_load

    # ---------------- Execution epochs with crash recovery ----------------
    dead = sorted(unresponsive)
    pending_crashes = dict(crash_faults)
    computed = np.zeros(m + 1)
    epochs: list[dict[str, Any]] = []
    crashes = 0
    reallocations = 1 if dead else 0  # chain already shrunk before epoch 0
    load_remaining = float(total_load)
    clock = setup_time
    makespan = setup_time
    completed = True

    while load_remaining > _EPS_LOAD:
        live = [0] + [i for i in range(1, m + 1) if i not in dead]
        network, mapping = _bridged_chain(w, z, live)
        schedule = solve_linear_boundary(network)
        alloc = schedule.alpha * load_remaining
        epoch_index = len(epochs)
        cm = (
            tracer.span(
                "epoch",
                t0=clock,
                index=epoch_index,
                load=load_remaining,
                live=list(mapping),
            )
            if tracer is not None
            else nullcontext(None)
        )
        with perf_span("epoch"), cm as epoch_span:
            sim = None
            if network.size > 1:
                from repro.sim.linear_sim import simulate_linear_chain

                sim = simulate_linear_chain(
                    network, alloc, speeds=network.w, total_load=load_remaining
                )
                epoch_computed_local = sim.computed
                epoch_makespan = float(sim.makespan)
            else:
                # Only the root survives: it computes everything itself.
                epoch_computed_local = np.array([load_remaining])
                epoch_makespan = load_remaining * float(w[0])

            # The earliest pending crash among processors with work this epoch.
            crash_events = []
            for target, fraction in pending_crashes.items():
                if target in dead or target not in mapping:
                    continue
                local = mapping.index(target)
                share = float(alloc[local]) if local < alloc.size else 0.0
                if share <= _EPS_LOAD:
                    # Nothing assigned; the crash costs nothing to recover.
                    crash_events.append((clock, target, fraction, 0.0, 0.0))
                    continue
                start, duration = _compute_window(
                    sim, local, epoch_makespan, share, w[target]
                )
                crash_events.append(
                    (clock + start + fraction * duration, target, fraction, share, duration)
                )
            crash_events.sort()

            if not crash_events:
                for local, proc in enumerate(mapping):
                    computed[proc] += float(epoch_computed_local[local])
                makespan = max(makespan, clock + epoch_makespan)
                epochs.append(
                    {
                        "index": epoch_index,
                        "start": clock,
                        "load": load_remaining,
                        "live": list(mapping),
                        "crashed": None,
                        "makespan": clock + epoch_makespan,
                    }
                )
                if epoch_span is not None:
                    epoch_span.set(makespan=clock + epoch_makespan, crashed=None)
                load_remaining = 0.0
                break

            crash_time, target, fraction, share, _duration = crash_events[0]
            del pending_crashes[target]
            dead.append(target)
            dead.sort()
            crashes += 1
            registry.inc("runtime.crashes")
            done_by_target = fraction * share
            lost = share - done_by_target
            detect_time = crash_time + retry.detection_timeout
            if tracer is not None:
                tracer.event(
                    "crash_detected",
                    t0=crash_time,
                    t1=detect_time,
                    proc=target,
                    completed=done_by_target,
                    lost=lost,
                )

            # Everyone else finishes this epoch's work; the target's completed
            # fraction stands, the remainder becomes the next epoch's load.
            for local, proc in enumerate(mapping):
                if proc == target:
                    computed[proc] += done_by_target
                else:
                    computed[proc] += float(epoch_computed_local[local])
            makespan = max(makespan, clock + epoch_makespan)
            epochs.append(
                {
                    "index": epoch_index,
                    "start": clock,
                    "load": load_remaining,
                    "live": list(mapping),
                    "crashed": target,
                    "crash_time": crash_time,
                    "detect_time": detect_time,
                    "lost": lost,
                    "makespan": clock + epoch_makespan,
                }
            )
            if epoch_span is not None:
                epoch_span.set(makespan=clock + epoch_makespan, crashed=target)

        load_remaining = lost
        clock = detect_time
        if load_remaining > _EPS_LOAD:
            reallocations += 1
            registry.inc("runtime.reallocations")
            if tracer is not None:
                tracer.event(
                    "reallocation",
                    t0=detect_time,
                    load=load_remaining,
                    survivors=[0] + [i for i in range(1, m + 1) if i not in dead],
                )

    # ---------------- Settlement ------------------------------------------
    with perf_span("settlement"):
        forfeits: dict[int, float] = {}
        ledger.pay(0, float(computed[0]) * float(w[0]), "root reimbursement")
        for i in range(1, m + 1):
            amount = float(computed[i]) * float(w[i])
            if i in dead:
                if amount > 0:
                    ledger.pay(i, amount, "compensation (pre-crash work)")
                    ledger.fine(i, amount, "forfeited: crashed before billing")
                forfeits[i] = amount
                if tracer is not None:
                    tracer.event("forfeit", proc=i, amount=amount)
            elif amount > 0:
                ledger.pay(i, amount, "computation compensation")

        verdicts = _classify(
            parsed, dead, unresponsive, grievances, completed, reallocations
        )
    return ResilientOutcome(
        completed=completed,
        m=m,
        dead=tuple(dead),
        unresponsive=tuple(sorted(unresponsive)),
        setup_time=setup_time,
        computed=computed,
        makespan=makespan,
        baseline_makespan=baseline_makespan,
        retries=retries,
        crashes=crashes,
        reallocations=reallocations,
        rejections=rejections,
        grievances=grievances,
        forfeits=forfeits,
        epochs=epochs,
        verdicts=verdicts,
        ledger=ledger,
    )


def _compute_window(sim, local: int, epoch_makespan: float, share: float, rate: float):
    """(start, duration) of ``local``'s compute interval in this epoch."""
    if sim is not None:
        for interval in sim.trace.intervals:
            if interval.kind == "compute" and interval.proc == local:
                return float(interval.start), float(interval.end - interval.start)
    # Degenerate epoch (root-only sim or dust share): approximate from rate.
    return 0.0, share * rate


def _classify(
    parsed,
    dead,
    unresponsive,
    grievances,
    completed,
    reallocations,
) -> list[dict[str, Any]]:
    """Per-fault runtime verdicts: tolerated / degraded / detected / failed."""
    verdicts = []
    rejected_against = {g["against"] for g in grievances}
    for kind, target, param in parsed:
        if not completed:
            verdict = "failed"
        elif kind == "crash_exec":
            verdict = "degraded" if target in dead else "tolerated"
        elif kind == "msg_corrupt":
            if param is not None and int(param) == 0:
                verdict = "tolerated"  # nothing was actually corrupted
            elif target in rejected_against:
                verdict = "detected"
            else:
                verdict = "failed"
        elif kind == "net_drop":
            verdict = "degraded" if target in unresponsive else "tolerated"
        else:  # net_delay / net_dup: absorbed by dedup and deadlines
            verdict = "tolerated" if target not in unresponsive else "degraded"
        verdicts.append(
            {"kind": kind, "target": target, "param": param, "verdict": verdict}
        )
    return verdicts
