"""Crash-fault-tolerant protocol runtime: lossy setup, crash detection,
mid-run re-allocation over survivors.

The mechanism layer (:mod:`repro.mechanism.dls_lbl`) assumes the
infrastructure works: messages arrive, processors stay up.  A
:func:`run_resilient` session re-runs the same DLT schedule under
*infrastructure* faults — the strategic incentive machinery is untouched
(all agents here are honest); what breaks is the network and the
hardware:

1. **Setup (Phase I analogue).**  Every processor's signed bid must
   reach the root over a :class:`~repro.runtime.transport.LossyTransport`.
   The root retries each exchange on a
   :class:`~repro.runtime.retry.RetryPolicy` deadline schedule
   (exponential backoff, jitter from the run's own rng stream).
   Corrupted copies fail ordinary signature verification and are
   rejected — each rejection files a grievance record (the root cannot
   distinguish line noise from tampering, so the evidence is kept) and
   the exchange continues to the retransmission.  A processor whose
   every attempt is lost is declared *unresponsive* and excluded before
   allocation.

2. **Allocation.**  The DLT program is solved over the *live* chain by
   :func:`~repro.dlt.linear.solve_linear_boundary` with dead interior
   positions bridged: the paper's front-end model puts relaying in
   obedient network hardware, so a dead CPU still forwards — the link
   time past it is the sum of the two links it sat between, and its load
   share is zero.

3. **Execution epochs.**  Phase III is simulated by
   :func:`~repro.sim.linear_sim.simulate_linear_chain`.  A ``crash_exec``
   fault kills its target partway through the target's compute window;
   the root detects the silence after ``detection_timeout`` sim-time
   units, marks the processor dead, re-solves the allocation of the
   *unfinished* load over the survivors, and distributes it in a new
   epoch.  Epochs repeat until no live processor crashes.  The makespan
   penalty relative to the fault-free allocation and every forfeited
   payment is recorded in the ledger and the trace.

4. **Settlement.**  Work-based compensation per processor (the runtime
   layer pays for metered work; the game-theoretic bonus structure lives
   one layer down and is unaffected).  A crashed processor cannot submit
   a Phase IV bill: its pre-crash work is paid and immediately forfeited
   back — both movements are explicit ledger entries, so conservation
   stays checkable and honest survivors are never fined.

**Byzantine faults.**  Beyond crashing, nodes can *lie*
(:data:`BYZANTINE_KINDS`), and lying composes freely with the
infrastructure faults above — the liar's control messages travel on its
own out-of-band channel (the adversary makes sure its lie arrives), so
detection never depends on the lossy transport's mood:

- ``byz_equivocate`` — two authentic Phase I bids with different
  values.  The root holds both signed messages, the contradiction is
  self-proving (Lemma 5.1 i), the liar is fined ``F`` and excluded
  before allocation.
- ``byz_replay`` — a relay message whose payload names another
  processor as originator but is signed by the liar.  Channel
  attribution convicts the signer (Lemma 5.1 ii): fined ``F``,
  excluded.
- ``byz_false_crash`` — an accusation that a live peer crashed.  The
  root checks its own liveness records
  (:func:`~repro.protocol.grievance.adjudicate_liveness`): the accuser
  is fined ``F`` and the framed processor rewarded ``F`` — the
  Section 4 symmetric scheme.  The accuser stays in the chain (lying
  about others does not impugn its own capacity).
- ``byz_meter`` — an inflated Phase IV billing claim.  The root's own
  meter is authoritative (Lemma 5.1 iv): the bill is rejected, the
  metered amount is paid, and the liar is fined ``F``.  Pre-empted only
  when the liar crashed before billing (the crash forfeit path already
  covers it).
- ``byz_suppress`` — a lying network element swallows its downstream
  neighbour's next sends.  Indistinguishable from a drop by design, so
  never *detected*: absorbed by retries (``tolerated``) or the victim
  is excluded (``degraded``).

Every detected lie produces explicit ledger entries through the same
:func:`~repro.protocol.grievance.apply_adjudication` path the mechanism
court uses, so a composed Byzantine × crash run still ends with a
balanced ledger, fines on detected liars only, and computation
compensation only to processors that verifiably worked.

Determinism: all randomness comes from rng streams derived from the
session seed, deadlines and arrivals are simulated time, and the trace
carries logical ids only — byte-identical output at any ``--jobs``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.crypto.keys import KeyRegistry
from repro.crypto.signing import sign
from repro.dlt.linear import solve_linear_boundary
from repro.mechanism.ledger import PaymentLedger
from repro.network.topology import LinearNetwork
from repro.obs.metrics import get_registry
from repro.obs.perf import span as perf_span
from repro.obs.tracer import Tracer
from repro.protocol.grievance import (
    Adjudication,
    adjudicate_forgery,
    adjudicate_liveness,
    apply_adjudication,
)
from repro.protocol.messages import Grievance, GrievanceKind, bid_payload
from repro.runtime.retry import RetryPolicy, backoff_schedule
from repro.runtime.transport import LossyTransport, TransportPolicy, TransportScript

__all__ = [
    "BYZANTINE_KINDS",
    "INFRASTRUCTURE_KINDS",
    "ResilientOutcome",
    "run_resilient",
]

#: Fault kinds handled by this runtime (the infrastructure layer of the
#: :data:`repro.faults.spec.FAULT_KINDS` catalog).
INFRASTRUCTURE_KINDS = ("net_drop", "net_delay", "net_dup", "msg_corrupt", "crash_exec")

#: Byzantine fault kinds — nodes that *lie* rather than crash; they run
#: on this runtime and compose freely with :data:`INFRASTRUCTURE_KINDS`.
BYZANTINE_KINDS = (
    "byz_equivocate",
    "byz_replay",
    "byz_false_crash",
    "byz_meter",
    "byz_suppress",
)

#: Load below this is not worth a re-allocation epoch.
_EPS_LOAD = 1e-12


@dataclass(frozen=True)
class ResilientOutcome:
    """Everything a resilient session produced.

    ``verdicts`` classifies every injected fault as the runtime handled
    it: ``tolerated`` (absorbed with no loss of capacity), ``degraded``
    (completed, but over fewer processors / with a makespan penalty) or
    ``detected`` (rejected with evidence); ``failed`` marks a fault the
    runtime could not recover from, and ``pre-empted`` a Byzantine lie
    whose liar died (or whose victim already had) before the lying
    moment — there was nothing left to detect.

    ``liars`` are the processors convicted of a Byzantine lie this
    session; ``excluded`` the subset dropped from the chain before
    allocation (they also appear in ``dead`` for scheduling purposes);
    ``fines`` the per-processor adjudication fines the runtime levied
    (forfeits excluded — those live in ``forfeits``).
    """

    completed: bool
    m: int
    dead: tuple[int, ...]
    unresponsive: tuple[int, ...]
    setup_time: float
    computed: np.ndarray
    makespan: float
    baseline_makespan: float
    retries: int
    crashes: int
    reallocations: int
    rejections: int
    grievances: list[dict[str, Any]] = field(default_factory=list)
    forfeits: dict[int, float] = field(default_factory=dict)
    epochs: list[dict[str, Any]] = field(default_factory=list)
    verdicts: list[dict[str, Any]] = field(default_factory=list)
    ledger: PaymentLedger = field(default_factory=PaymentLedger)
    liars: tuple[int, ...] = ()
    excluded: tuple[int, ...] = ()
    fines: dict[int, float] = field(default_factory=dict)

    @property
    def makespan_penalty(self) -> float:
        """Extra simulated time versus the fault-free allocation."""
        return self.makespan - self.baseline_makespan

    @property
    def total_computed(self) -> float:
        """Load units computed across all epochs (== W when recovered)."""
        return float(self.computed.sum())


def _fault_fields(fault: Any) -> tuple[str, int, float | None]:
    """Accept :class:`~repro.faults.spec.FaultSpec` or a plain dict."""
    if isinstance(fault, dict):
        return str(fault["kind"]), int(fault["target"]), fault.get("param")
    param = getattr(fault, "effective_param", getattr(fault, "param", None))
    return str(fault.kind), int(fault.target), param


@dataclass
class _ByzantinePlan:
    """Compiled Byzantine faults for one session.

    ``setdefault`` semantics at compile time: the first fault of a kind
    against a target wins (a processor tells one lie per kind).
    """

    fine: float = 1.0
    equivocators: dict[int, float] = field(default_factory=dict)
    replayers: dict[int, float] = field(default_factory=dict)
    accusers: set[int] = field(default_factory=set)
    meter_liars: dict[int, float] = field(default_factory=dict)
    suppress_victims: dict[int, int] = field(default_factory=dict)


def _bridged_chain(
    w: np.ndarray, z: np.ndarray, live: list[int]
) -> tuple[LinearNetwork, list[int]]:
    """The survivor chain: dead positions bridged by summing link times."""
    w_red = w[live]
    z_red = np.array(
        [float(z[a:b].sum()) for a, b in zip(live[:-1], live[1:])], dtype=np.float64
    )
    return LinearNetwork(w_red, z_red), live


def run_resilient(
    w: Sequence[float],
    z: Sequence[float],
    faults: Sequence[Any] = (),
    *,
    retry: RetryPolicy | None = None,
    policy: TransportPolicy | None = None,
    seed: int = 0,
    total_load: float = 1.0,
    tracer: Tracer | None = None,
    key_seed: bytes | None = b"runtime",
    fine: float = 1.0,
) -> ResilientOutcome:
    """Execute one resilient session on the chain ``(w, z)``.

    Parameters
    ----------
    w, z:
        True unit processing times ``w_0..w_m`` (the root is ``w_0``) and
        link times ``z_1..z_m``.
    faults:
        Infrastructure fault specs (:data:`INFRASTRUCTURE_KINDS`):
        ``net_drop`` (param: sends lost before one gets through),
        ``net_delay`` (param: latency added to each delivery),
        ``net_dup`` (param: sends delivered twice),
        ``msg_corrupt`` (param: sends delivered with a damaged
        signature), ``crash_exec`` (param: fraction of the target's
        compute window after which it dies) — and Byzantine specs
        (:data:`BYZANTINE_KINDS`, see the module docstring):
        ``byz_equivocate`` (param: second-bid factor), ``byz_replay``
        (param: forged-value factor), ``byz_false_crash`` (no param),
        ``byz_meter`` (param: billing inflation factor > 1),
        ``byz_suppress`` (param: neighbour sends swallowed).
    retry, policy:
        Deadline/backoff policy and background transport loss rates.
    seed:
        Derives the transport and jitter rng streams; the session is a
        pure function of ``(w, z, faults, retry, policy, seed)``.
    fine:
        The quantity ``F`` levied on each detected Byzantine lie.
    """
    w = np.asarray(w, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    m = z.size
    if w.size != m + 1:
        raise ValueError(f"w has length {w.size}, expected {m + 1}")
    retry = retry if retry is not None else RetryPolicy()
    policy = policy if policy is not None else TransportPolicy()
    registry = get_registry()

    parsed = [_fault_fields(f) for f in faults]
    for kind, target, _ in parsed:
        if kind not in INFRASTRUCTURE_KINDS and kind not in BYZANTINE_KINDS:
            raise ValueError(
                f"fault kind {kind!r} is not a runtime kind "
                f"{INFRASTRUCTURE_KINDS + BYZANTINE_KINDS}"
            )
        if not 1 <= target <= m:
            raise ValueError(f"fault target {target} outside 1..{m}")

    scripts: dict[int, TransportScript] = {}
    crash_faults: dict[int, float] = {}
    byz = _ByzantinePlan(fine=float(fine))
    for kind, target, param in parsed:
        if kind == "net_drop":
            scripts.setdefault(target, TransportScript()).drop_next += int(
                param if param is not None else 2
            )
        elif kind == "msg_corrupt":
            scripts.setdefault(target, TransportScript()).corrupt_next += int(
                param if param is not None else 1
            )
        elif kind == "net_dup":
            scripts.setdefault(target, TransportScript()).duplicate_next += int(
                param if param is not None else 1
            )
        elif kind == "net_delay":
            scripts.setdefault(target, TransportScript()).delay_each += float(
                param if param is not None else 0.5
            )
        elif kind == "crash_exec":
            crash_faults[target] = float(np.clip(param if param is not None else 0.5, 0.0, 1.0))
        elif kind == "byz_equivocate":
            byz.equivocators.setdefault(target, float(param if param is not None else 1.5))
        elif kind == "byz_replay":
            byz.replayers.setdefault(target, float(param if param is not None else 0.8))
        elif kind == "byz_false_crash":
            byz.accusers.add(target)
        elif kind == "byz_meter":
            byz.meter_liars.setdefault(target, float(param if param is not None else 2.0))
        elif kind == "byz_suppress":
            # The liar controls the network element on its downstream
            # link: its neighbour's sends are the ones that vanish.
            victim = target + 1 if target < m else max(target - 1, 1)
            byz.suppress_victims[target] = victim
            if victim != target:
                scripts.setdefault(victim, TransportScript()).suppress_next += int(
                    param if param is not None else 2
                )

    key_registry, keys = KeyRegistry.for_processors(m + 1, seed=key_seed)
    key_by_owner = {pair.owner: pair for pair in keys}
    transport = LossyTransport(
        policy, np.random.default_rng([seed, 1]), scripts=scripts, tracer=tracer
    )
    jitter_rng = np.random.default_rng([seed, 2])

    cm = (
        tracer.span("resilient_run", m=m, total_load=total_load, faults=len(parsed))
        if tracer is not None
        else nullcontext(None)
    )
    with perf_span("runtime"), cm as run_span:
        outcome = _run_session(
            w,
            z,
            m,
            retry,
            transport,
            jitter_rng,
            key_registry,
            key_by_owner,
            crash_faults,
            byz,
            parsed,
            total_load,
            tracer,
            registry,
        )
        if run_span is not None:
            run_span.set(
                completed=outcome.completed,
                makespan=outcome.makespan,
                dead=list(outcome.dead),
                reallocations=outcome.reallocations,
            )
    return outcome


def _run_session(
    w,
    z,
    m,
    retry,
    transport,
    jitter_rng,
    key_registry,
    key_by_owner,
    crash_faults,
    byz,
    parsed,
    total_load,
    tracer,
    registry,
) -> ResilientOutcome:
    ledger = PaymentLedger(tracer=tracer)

    # ---------------- Setup: collect bids over the lossy transport -------
    with perf_span("setup"):
        retries = 0
        rejections = 0
        grievances: list[dict[str, Any]] = []
        unresponsive: list[int] = []
        ready = np.zeros(m + 1)
        for i in range(1, m + 1):
            message = sign(key_by_owner[i], bid_payload(i, float(w[i])))
            timeouts = backoff_schedule(retry, jitter_rng)
            seen: set[str] = set()
            t = 0.0
            arrived: float | None = None
            for attempt, timeout in enumerate(timeouts):
                deadline = t + timeout
                for delivery in transport.send(
                    message, sender=i, receiver=0, at=t, kind="bid"
                ):
                    if delivery.arrival > deadline:
                        continue  # the root has already given up on this attempt
                    digest = delivery.message.content_digest() + delivery.message.signature
                    if digest in seen:
                        continue  # duplicate copy, discarded silently
                    seen.add(digest)
                    if not delivery.message.verify(key_registry):
                        rejections += 1
                        registry.inc("runtime.corrupt_rejected")
                        grievances.append(
                            {
                                "kind": "corrupt-message",
                                "accuser": 0,
                                "against": i,
                                "attempt": attempt,
                                "at": delivery.arrival,
                            }
                        )
                        if tracer is not None:
                            tracer.event(
                                "msg_rejected",
                                t0=delivery.arrival,
                                proc=i,
                                attempt=attempt,
                                reason="signature verification failed",
                            )
                        continue
                    arrived = delivery.arrival
                    break
                if arrived is not None:
                    break
                retries += 1
                registry.inc("runtime.retries")
                # Simulated seconds waited before this retransmit; a
                # histogram (not the trace) so backoff growth is visible
                # in perf reports without touching determinism.
                registry.observe("runtime.retry_wait_sim", float(timeout))
                if tracer is not None:
                    tracer.event("retry", t0=deadline, proc=i, attempt=attempt, timeout=timeout)
                t = deadline
            if arrived is None:
                # The last "retry" above was really the give-up decision.
                retries -= 1
                unresponsive.append(i)
                registry.inc("runtime.unresponsive")
                if tracer is not None:
                    tracer.event("unresponsive", t0=t, proc=i, attempts=len(timeouts))
            else:
                ready[i] = arrived
        setup_time = float(ready.max())

    # ---------------- Byzantine adjudication at the epoch-0 boundary ------
    # Lies travel on the liar's own out-of-band channel (see the module
    # docstring), so none of this consumes transport or jitter draws —
    # the rng streams stay aligned with the byzantine-free run.
    liars: set[int] = set()
    excluded: set[int] = set()
    runtime_fines: dict[int, float] = {}
    byz_verdicts: dict[tuple[str, int], str] = {}

    def _convict(verdict: Adjudication, grievance_record: dict[str, Any]) -> None:
        apply_adjudication(verdict, ledger, tracer=tracer)
        liars.add(verdict.fined)
        runtime_fines[verdict.fined] = (
            runtime_fines.get(verdict.fined, 0.0) + verdict.fine_amount
        )
        grievances.append(grievance_record)
        registry.inc("runtime.byz_detected")

    with perf_span("byzantine"):
        for i in sorted(byz.equivocators):
            factor = byz.equivocators[i]
            first = sign(key_by_owner[i], bid_payload(i, float(w[i])))
            second = sign(key_by_owner[i], bid_payload(i, float(w[i]) * factor))
            # Self-proving contradiction: two authentic bids, different
            # digests, same protocol slot (Lemma 5.1 i) — the same check
            # GrievanceCourt._check_contradictory runs on evidence.
            contradiction = (
                first.verify(key_registry)
                and second.verify(key_registry)
                and first.content_digest() != second.content_digest()
            )
            if not contradiction:
                byz_verdicts[("byz_equivocate", i)] = "tolerated"
                continue
            verdict = Adjudication(
                grievance=Grievance(
                    kind=GrievanceKind.CONTRADICTORY_MESSAGES,
                    accuser=0,
                    accused=i,
                    conflicting=(first, second),
                ),
                substantiated=True,
                fined=i,
                rewarded=0,  # the root keeps the reward (eq. 4.3)
                fine_amount=byz.fine,
                reward_amount=byz.fine,
                reason="two authentic Phase I bids with contradictory content",
            )
            _convict(
                verdict,
                {"kind": "equivocating-bid", "accuser": 0, "against": i,
                 "factor": factor},
            )
            excluded.add(i)
            byz_verdicts[("byz_equivocate", i)] = "detected"

        for i in sorted(byz.replayers):
            factor = byz.replayers[i]
            claimed = i + 1 if i < m else (i - 1 if i > 1 else 0)
            forged = sign(key_by_owner[i], bid_payload(claimed, float(w[claimed]) * factor))
            if forged.payload["proc"] == forged.signer:  # pragma: no cover
                byz_verdicts[("byz_replay", i)] = "tolerated"
                continue
            _convict(
                adjudicate_forgery(i, claimed, byz.fine),
                {"kind": "forged-relay", "accuser": 0, "against": i,
                 "claimed": claimed},
            )
            excluded.add(i)
            byz_verdicts[("byz_replay", i)] = "detected"

        dead_now = set(unresponsive) | excluded
        for a in sorted(byz.accusers):
            candidates = [j for j in range(1, m + 1) if j != a and j not in dead_now]
            if not candidates:
                # Everyone else already failed: framing a dead processor
                # gains nothing, so the adversary stays silent.
                byz_verdicts[("byz_false_crash", a)] = "pre-empted"
                continue
            victim = min(candidates, key=lambda j: (abs(j - a), j))
            _convict(
                adjudicate_liveness(a, victim, True, byz.fine),
                {"kind": "crash-accusation", "accuser": a, "against": victim,
                 "substantiated": False},
            )
            byz_verdicts[("byz_false_crash", a)] = "detected"

    if excluded:
        registry.inc("runtime.byz_excluded", len(excluded))
        if tracer is not None:
            for i in sorted(excluded):
                tracer.event("excluded", t0=setup_time, proc=i, reason="detected liar")

    # ---------------- Baseline: the fault-free allocation -----------------
    baseline = solve_linear_boundary(LinearNetwork(w, z))
    baseline_makespan = float(baseline.makespan) * total_load

    # ---------------- Execution epochs with crash recovery ----------------
    dead = sorted(set(unresponsive) | excluded)
    pending_crashes = dict(crash_faults)
    computed = np.zeros(m + 1)
    epochs: list[dict[str, Any]] = []
    crashed: set[int] = set()
    crashes = 0
    reallocations = 1 if dead else 0  # chain already shrunk before epoch 0
    load_remaining = float(total_load)
    clock = setup_time
    makespan = setup_time
    completed = True

    while load_remaining > _EPS_LOAD:
        live = [0] + [i for i in range(1, m + 1) if i not in dead]
        network, mapping = _bridged_chain(w, z, live)
        schedule = solve_linear_boundary(network)
        alloc = schedule.alpha * load_remaining
        epoch_index = len(epochs)
        cm = (
            tracer.span(
                "epoch",
                t0=clock,
                index=epoch_index,
                load=load_remaining,
                live=list(mapping),
            )
            if tracer is not None
            else nullcontext(None)
        )
        with perf_span("epoch"), cm as epoch_span:
            sim = None
            if network.size > 1:
                from repro.sim.linear_sim import simulate_linear_chain

                sim = simulate_linear_chain(
                    network, alloc, speeds=network.w, total_load=load_remaining
                )
                epoch_computed_local = sim.computed
                epoch_makespan = float(sim.makespan)
            else:
                # Only the root survives: it computes everything itself.
                epoch_computed_local = np.array([load_remaining])
                epoch_makespan = load_remaining * float(w[0])

            # The earliest pending crash among processors with work this epoch.
            crash_events = []
            for target, fraction in pending_crashes.items():
                if target in dead or target not in mapping:
                    continue
                local = mapping.index(target)
                share = float(alloc[local]) if local < alloc.size else 0.0
                if share <= _EPS_LOAD:
                    # Nothing assigned; the crash costs nothing to recover.
                    crash_events.append((clock, target, fraction, 0.0, 0.0))
                    continue
                start, duration = _compute_window(
                    sim, local, epoch_makespan, share, w[target]
                )
                crash_events.append(
                    (clock + start + fraction * duration, target, fraction, share, duration)
                )
            crash_events.sort()

            if not crash_events:
                for local, proc in enumerate(mapping):
                    computed[proc] += float(epoch_computed_local[local])
                makespan = max(makespan, clock + epoch_makespan)
                epochs.append(
                    {
                        "index": epoch_index,
                        "start": clock,
                        "load": load_remaining,
                        "live": list(mapping),
                        "crashed": None,
                        "makespan": clock + epoch_makespan,
                    }
                )
                if epoch_span is not None:
                    epoch_span.set(makespan=clock + epoch_makespan, crashed=None)
                load_remaining = 0.0
                break

            crash_time, target, fraction, share, _duration = crash_events[0]
            del pending_crashes[target]
            dead.append(target)
            dead.sort()
            crashed.add(target)
            crashes += 1
            registry.inc("runtime.crashes")
            done_by_target = fraction * share
            lost = share - done_by_target
            detect_time = crash_time + retry.detection_timeout
            if tracer is not None:
                tracer.event(
                    "crash_detected",
                    t0=crash_time,
                    t1=detect_time,
                    proc=target,
                    completed=done_by_target,
                    lost=lost,
                )

            # Everyone else finishes this epoch's work; the target's completed
            # fraction stands, the remainder becomes the next epoch's load.
            for local, proc in enumerate(mapping):
                if proc == target:
                    computed[proc] += done_by_target
                else:
                    computed[proc] += float(epoch_computed_local[local])
            makespan = max(makespan, clock + epoch_makespan)
            epochs.append(
                {
                    "index": epoch_index,
                    "start": clock,
                    "load": load_remaining,
                    "live": list(mapping),
                    "crashed": target,
                    "crash_time": crash_time,
                    "detect_time": detect_time,
                    "lost": lost,
                    "makespan": clock + epoch_makespan,
                }
            )
            if epoch_span is not None:
                epoch_span.set(makespan=clock + epoch_makespan, crashed=target)

        load_remaining = lost
        clock = detect_time
        if load_remaining > _EPS_LOAD:
            reallocations += 1
            registry.inc("runtime.reallocations")
            if tracer is not None:
                tracer.event(
                    "reallocation",
                    t0=detect_time,
                    load=load_remaining,
                    survivors=[0] + [i for i in range(1, m + 1) if i not in dead],
                )

    # ---------------- Settlement ------------------------------------------
    with perf_span("settlement"):
        forfeits: dict[int, float] = {}
        ledger.pay(0, float(computed[0]) * float(w[0]), "root reimbursement")
        for i in range(1, m + 1):
            amount = float(computed[i]) * float(w[i])
            if i in dead:
                if amount > 0:
                    ledger.pay(i, amount, "compensation (pre-crash work)")
                    ledger.fine(i, amount, "forfeited: crashed before billing")
                forfeits[i] = amount
                if tracer is not None:
                    tracer.event("forfeit", proc=i, amount=amount)
            elif amount > 0:
                ledger.pay(i, amount, "computation compensation")

        # Phase IV billing audit for the meter liars: the root's own
        # meter (``computed``) is authoritative; the inflated bill is
        # rejected — the metered amount was already paid above — and
        # the fraudulent excess costs the flat fine F.  A liar that
        # crashed never bills (the forfeit path above covered it).
        for i in sorted(byz.meter_liars):
            if i in crashed:
                byz_verdicts[("byz_meter", i)] = "pre-empted"
                continue
            factor = byz.meter_liars[i]
            metered = float(computed[i]) * float(w[i])
            # A liar with no metered work fabricates an average-share
            # claim from whole cloth; either way the claim exceeds the
            # meter (spec validation pins factor > 1).
            claimed_units = (
                float(computed[i])
                if computed[i] > _EPS_LOAD
                else total_load / (m + 1)
            )
            claimed = claimed_units * float(w[i]) * factor
            ledger.fine(i, byz.fine, "meter-detected: inflated billing claim")
            liars.add(i)
            runtime_fines[i] = runtime_fines.get(i, 0.0) + byz.fine
            grievances.append(
                {"kind": "inflated-meter", "accuser": 0, "against": i,
                 "claimed": claimed, "metered": metered}
            )
            registry.inc("runtime.byz_detected")
            registry.inc("mechanism.fines")
            registry.inc("mechanism.fine_volume", byz.fine)
            if tracer is not None:
                tracer.event(
                    "fine",
                    proc=i,
                    amount=byz.fine,
                    source="meter-audit",
                    reason="inflated-meter",
                )
            byz_verdicts[("byz_meter", i)] = "detected"

        verdicts = _classify(
            parsed,
            dead,
            unresponsive,
            grievances,
            completed,
            reallocations,
            byz_verdicts,
            byz.suppress_victims,
        )
    return ResilientOutcome(
        completed=completed,
        m=m,
        dead=tuple(dead),
        unresponsive=tuple(sorted(unresponsive)),
        setup_time=setup_time,
        computed=computed,
        makespan=makespan,
        baseline_makespan=baseline_makespan,
        retries=retries,
        crashes=crashes,
        reallocations=reallocations,
        rejections=rejections,
        grievances=grievances,
        forfeits=forfeits,
        epochs=epochs,
        verdicts=verdicts,
        ledger=ledger,
        liars=tuple(sorted(liars)),
        excluded=tuple(sorted(excluded)),
        fines=runtime_fines,
    )


def _compute_window(sim, local: int, epoch_makespan: float, share: float, rate: float):
    """(start, duration) of ``local``'s compute interval in this epoch."""
    if sim is not None:
        for interval in sim.trace.intervals:
            if interval.kind == "compute" and interval.proc == local:
                return float(interval.start), float(interval.end - interval.start)
    # Degenerate epoch (root-only sim or dust share): approximate from rate.
    return 0.0, share * rate


def _classify(
    parsed,
    dead,
    unresponsive,
    grievances,
    completed,
    reallocations,
    byz_verdicts=None,
    suppress_victims=None,
) -> list[dict[str, Any]]:
    """Per-fault runtime verdicts:
    tolerated / degraded / detected / failed / pre-empted."""
    verdicts = []
    byz_verdicts = byz_verdicts if byz_verdicts is not None else {}
    suppress_victims = suppress_victims if suppress_victims is not None else {}
    rejected_against = {
        g["against"] for g in grievances if g["kind"] == "corrupt-message"
    }
    for kind, target, param in parsed:
        if not completed:
            verdict = "failed"
        elif kind == "byz_suppress":
            victim = suppress_victims.get(target)
            verdict = "degraded" if victim in unresponsive else "tolerated"
        elif kind in BYZANTINE_KINDS:
            verdict = byz_verdicts.get((kind, target), "pre-empted")
        elif kind == "crash_exec":
            verdict = "degraded" if target in dead else "tolerated"
        elif kind == "msg_corrupt":
            if param is not None and int(param) == 0:
                verdict = "tolerated"  # nothing was actually corrupted
            elif target in rejected_against:
                verdict = "detected"
            else:
                verdict = "failed"
        elif kind == "net_drop":
            verdict = "degraded" if target in unresponsive else "tolerated"
        else:  # net_delay / net_dup: absorbed by dedup and deadlines
            verdict = "tolerated" if target not in unresponsive else "degraded"
        verdicts.append(
            {"kind": kind, "target": target, "param": param, "verdict": verdict}
        )
    return verdicts
