"""Timeout and retry-with-exponential-backoff policy, in simulated time.

The protocol model is synchronous and message delivery is instantaneous
at the abstraction level of :mod:`repro.mechanism.dls_lbl`; the runtime
layer (see :mod:`repro.runtime.transport`) breaks that assumption with
lossy delivery, so senders need deadlines and retransmission.  This
module supplies the policy: a :class:`RetryPolicy` describes the attempt
budget and the backoff curve, and :func:`backoff_schedule` materializes
the per-attempt timeouts *deterministically* — jitter is drawn from the
caller's seeded rng stream (one draw per attempt, always consumed), so a
run's deadlines are a pure function of ``(policy, stream seed)`` and the
resulting traces stay byte-identical across ``--jobs`` counts.

All durations are simulated time units (the same clock the Gantt
simulator uses), never wall clock: a retry does not make the test suite
slower, it makes the *simulated* run later.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

import numpy as np

__all__ = ["RetryPolicy", "RetryExhausted", "backoff_schedule", "retry_async"]


class RetryExhausted(Exception):
    """Every attempt of a retried operation timed out or failed."""

    def __init__(self, message: str, *, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff curve for one retried message.

    Attributes
    ----------
    max_attempts:
        Total sends, including the first (``1`` = no retry).
    base_timeout:
        Deadline for the first attempt, in simulated time units.
    backoff_factor:
        Multiplier applied to the timeout after each failure.
    max_timeout:
        Cap on any single attempt's timeout (backoff saturates here).
    jitter:
        Fractional jitter: attempt ``a``'s timeout is scaled by
        ``1 + jitter * u_a`` with ``u_a`` drawn uniformly from ``[0, 1)``
        out of the run's rng stream.  Deterministic given the stream.
    detection_timeout:
        How long after a processor's last expected progress event the
        root declares it crashed (the heartbeat deadline used by
        :mod:`repro.runtime.session`).
    """

    max_attempts: int = 4
    base_timeout: float = 1.0
    backoff_factor: float = 2.0
    max_timeout: float = 16.0
    jitter: float = 0.1
    detection_timeout: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_timeout <= 0:
            raise ValueError("base_timeout must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_timeout < self.base_timeout:
            raise ValueError("max_timeout must be >= base_timeout")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.detection_timeout <= 0:
            raise ValueError("detection_timeout must be positive")


def backoff_schedule(policy: RetryPolicy, rng: np.random.Generator) -> list[float]:
    """Per-attempt timeouts for one retried message.

    Always consumes exactly ``policy.max_attempts`` uniform draws from
    ``rng`` — even when the caller succeeds on the first attempt — so the
    stream position after a message exchange depends only on the policy,
    never on the delivery outcome.  That alignment is what keeps every
    later draw (and therefore the whole trace) identical between a lossy
    run and its retry-free baseline.
    """
    timeouts: list[float] = []
    timeout = policy.base_timeout
    for _ in range(policy.max_attempts):
        u = float(rng.random())
        timeouts.append(min(timeout, policy.max_timeout) * (1.0 + policy.jitter * u))
        timeout *= policy.backoff_factor
    return timeouts


async def retry_async(
    operation: Callable[[], Awaitable[Any]],
    policy: RetryPolicy,
    rng: np.random.Generator,
    *,
    label: str = "operation",
    on_retry: Callable[[int, float, BaseException], None] | None = None,
) -> Any:
    """Run an async ``operation`` under ``policy``'s backoff schedule.

    The one place the schedule is interpreted as *wall-clock* seconds:
    real network clients (``repro.serve``'s load generator) retry real
    connects/reads, so attempt ``a``'s timeout bounds the awaited call
    via :func:`asyncio.wait_for` and doubles as the sleep before the
    next attempt.  Timeouts and connection/OS errors are retried;
    anything else propagates immediately.  When every attempt fails,
    raises :class:`RetryExhausted` chained to the last error.

    ``operation`` is a zero-argument callable returning a fresh awaitable
    per attempt (an ``asyncio.open_connection`` lambda, say) — a bare
    coroutine object can only be awaited once.
    """
    timeouts = backoff_schedule(policy, rng)
    last_exc: BaseException | None = None
    for attempt, timeout in enumerate(timeouts):
        try:
            return await asyncio.wait_for(operation(), timeout=timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
            last_exc = exc
            if on_retry is not None:
                on_retry(attempt, timeout, exc)
            if attempt + 1 < len(timeouts):
                await asyncio.sleep(timeout)
    raise RetryExhausted(
        f"{label} failed after {len(timeouts)} attempts: {last_exc!r}",
        attempts=len(timeouts),
    ) from last_exc
