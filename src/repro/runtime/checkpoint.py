"""Per-task completion journal for the experiment runner.

A :class:`CheckpointJournal` is an append-only JSONL file recording every
finished experiment task — its identity key and its pickled outcome.  An
interrupted ``python -m repro experiments --checkpoint J`` run can be
re-invoked with the same arguments: tasks whose keys appear in the
journal are restored instead of re-executed, and because every task's
result is a pure function of its identity (seed derivation in
:func:`repro.experiments.runner.task_seed`), the resumed run's output is
identical to an uninterrupted run's.

Design constraints the format serves:

- **Crash-safe appends.**  One task per line, flushed and fsynced as each
  task completes; a process killed mid-write leaves at most one partial
  final line, which :meth:`CheckpointJournal.load` skips.
- **Identity, not position.**  A task's key hashes the full call identity
  (experiment id, seed, batch flag, keyword overrides, replication
  index), so resuming with a *different* task list simply misses the
  journal and recomputes — stale entries are inert, never wrong.
- **Self-describing lines.**  Each record carries the readable identity
  fields next to the opaque payload, so ``jq`` over the journal shows
  what has finished without unpickling anything.

The payload is a base64-encoded pickle of ``(result, duration, metrics
snapshot)`` — exactly what the worker entry point returns — restored on
resume so metrics reports and formatted output match the uninterrupted
run.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from typing import Any, Mapping

__all__ = ["CheckpointJournal", "task_key"]

#: Journal format version; bumped on incompatible record changes.  Loads
#: skip records from other versions (they re-run, never mis-restore).
_VERSION = 1


def task_key(
    exp_id: str,
    seed: int | None,
    use_batch: bool,
    kwargs: Mapping[str, Any],
    replication: int | None = None,
) -> str:
    """Stable identity hash of one experiment task.

    Uses ``repr`` for keyword values (sorted by name) rather than JSON so
    non-JSON-serializable overrides still key deterministically; two
    tasks share a key exactly when the runner would call the experiment
    identically.
    """
    identity = (
        exp_id,
        seed,
        bool(use_batch),
        tuple(sorted((str(k), repr(v)) for k, v in kwargs.items())),
        replication,
    )
    digest = hashlib.sha256(repr(identity).encode()).hexdigest()
    return digest[:32]


class CheckpointJournal:
    """Append-only JSONL journal of completed experiment tasks.

    Parameters
    ----------
    path:
        Journal file location; created (with parent directories) on the
        first :meth:`record`.  An existing file is loaded, so constructing
        a journal on a previous run's path is what *resume* means.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._done: dict[str, tuple[Any, float, dict[str, Any]]] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("v") != _VERSION:
                        continue
                    key = record["key"]
                    payload = pickle.loads(base64.b64decode(record["payload"]))
                except Exception:
                    # A partial final line from a killed writer, or a
                    # foreign record: skip — the task will simply re-run.
                    continue
                self._done[key] = payload

    def __contains__(self, key: str) -> bool:
        return key in self._done

    def __len__(self) -> int:
        return len(self._done)

    def get(self, key: str) -> tuple[Any, float, dict[str, Any]] | None:
        """The journaled ``(result, duration, metrics)`` outcome, if any."""
        return self._done.get(key)

    def record(
        self,
        key: str,
        outcome: tuple[Any, float, dict[str, Any]],
        *,
        exp_id: str = "",
        seed: int | None = None,
        replication: int | None = None,
    ) -> None:
        """Append one completed task, durably (flush + fsync per line)."""
        self._done[key] = outcome
        payload = base64.b64encode(
            pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        record = {
            "v": _VERSION,
            "key": key,
            "exp_id": exp_id,
            "seed": seed,
            "replication": replication,
            "payload": payload,
        }
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
