"""Strategic processor agents.

The paper models processors as *autonomous nodes*: they control both the
inputs they report (bids) and the algorithm they run.  The
:class:`~repro.agents.base.ProcessorAgent` base class implements the
honest protocol; each deviation class of Lemma 5.1 has a subclass in
:mod:`repro.agents.strategies` that overrides exactly the behaviour it
manipulates, and :mod:`repro.agents.annoying` adds the
selfish-and-annoying behaviours of Theorem 5.2.
"""

from repro.agents.base import ProcessorAgent
from repro.agents.strategies import (
    ContradictoryBidAgent,
    FalseAccuserAgent,
    LoadSheddingAgent,
    MalformedBidAgent,
    MisbiddingAgent,
    MiscomputingAgent,
    OverchargingAgent,
    RelayTamperingAgent,
    SilentVictimAgent,
    SlowExecutionAgent,
    TruthfulAgent,
)
from repro.agents.annoying import AnnoyingAgent, DataCorruptingAgent, DuplicatingAgent

__all__ = [
    "AnnoyingAgent",
    "ContradictoryBidAgent",
    "DataCorruptingAgent",
    "DuplicatingAgent",
    "FalseAccuserAgent",
    "LoadSheddingAgent",
    "MalformedBidAgent",
    "MisbiddingAgent",
    "MiscomputingAgent",
    "OverchargingAgent",
    "ProcessorAgent",
    "RelayTamperingAgent",
    "SilentVictimAgent",
    "SlowExecutionAgent",
    "TruthfulAgent",
]
