"""Base processor agent: the honest protocol implementation.

Subclasses override individual hooks to deviate.  Hooks are named after
the decision they control, and every default implements exactly what the
DLS-LBL mechanism prescribes, so ``ProcessorAgent`` itself is the
truthful, obedient strategy.

The physical constraint :math:`\\tilde w_i \\ge t_i` ("a processor cannot
compute faster than its full capacity") is enforced by the *mechanism
engine*, not trusted to the agent, mirroring the paper's premise that
actual processing time is measured by the tamper-proof meter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.messages import GrievanceKind, PaymentProof

__all__ = ["ProcessorAgent"]


class ProcessorAgent:
    """A strategic processor :math:`P_i` (:math:`i \\ge 1`).

    Parameters
    ----------
    index:
        Position in the chain (``1 .. m``; the root ``P_0`` is obedient
        and belongs to the mechanism, not to this class).
    true_rate:
        The private type :math:`t_i` — the genuine time to process a
        unit load.
    """

    #: Human-readable strategy name used in experiment tables.
    strategy_name = "truthful"

    def __init__(self, index: int, true_rate: float) -> None:
        if index < 0:
            raise ValueError("agent index must be non-negative")
        if true_rate <= 0:
            raise ValueError("true_rate must be positive")
        # Index 0 is only meaningful in interior-origination chains, where
        # the obedient root sits mid-chain and P_0 is a strategic arm
        # terminal; DLSLBLMechanism itself rejects index-0 agents.
        self.index = index
        self.true_rate = float(true_rate)

    # ------------------------------------------------------------------
    # Strategic declarations
    # ------------------------------------------------------------------

    def choose_bid(self) -> float:
        """The reported unit processing time :math:`w_i` (Phase I input).

        Truthful agents report :math:`t_i`.
        """
        return self.true_rate

    def choose_execution_rate(self) -> float:
        """The unit time the agent *attempts* to run at (:math:`\\tilde w_i`).

        The engine clamps the result to ``>= true_rate`` — hardware cannot
        exceed full capacity.  Honest agents run at full capacity.
        """
        return self.true_rate

    # ------------------------------------------------------------------
    # Phase I — computing the local allocation vector
    # ------------------------------------------------------------------

    def phase1_w_bar(self, honest_w_bar: float) -> float:
        """The equivalent bid :math:`\\bar w_i` this agent reports.

        ``honest_w_bar`` is the correctly computed value
        :math:`\\hat\\alpha_i w_i` from the agent's own bid and the
        successor's reported :math:`\\bar w_{i+1}`.  Deviation (ii) of
        Lemma 5.1 returns something else.
        """
        return honest_w_bar

    def phase1_second_bid(self, reported_w_bar: float) -> float | None:
        """A *second*, different bid to also sign and send (deviation (i),
        contradictory messages).  ``None`` (default) sends a single bid.
        """
        return None

    def phase1_sends_malformed(self) -> bool:
        """Whether the agent sends a malformed/unsigned Phase I message
        instead of a proper bid.  The recipient "terminates the protocol"
        (paper, Phase I); with no authentic evidence nobody can be fined,
        so this is pure self-sabotage — the sender forfeits its utility.
        """
        return False

    # ------------------------------------------------------------------
    # Phase II — relaying the allocation bundle
    # ------------------------------------------------------------------

    def phase2_validates(self) -> bool:
        """Whether the agent runs the Phase II checks on its incoming
        ``G_i``.  Honest agents do; a colluding or lazy agent may not
        (it then forfeits the reporting reward)."""
        return True

    def phase2_d_next(self, honest_d_next: float) -> float:
        """The load share :math:`D_{i+1}` this agent signs into
        ``G_{i+1}``.  Deviating here (deviation (ii), Phase II flavour)
        mis-sizes the successor's assignment and is caught by the
        successor's checks."""
        return honest_d_next

    def phase2_echo_bid(self, successor_w_bar: float) -> float:
        """The countersigned echo of the successor's Phase I bid placed in
        ``G_{i+1}``.  Tampering with it is caught by the successor's echo
        check."""
        return successor_w_bar

    # ------------------------------------------------------------------
    # Phase III — load distribution and computation
    # ------------------------------------------------------------------

    def choose_retention(self, assigned: float, received: float, expected_forward: float) -> float:
        """Load units to retain and compute.

        Honest behaviour: compute everything not owed downstream —
        ``received - expected_forward`` — which equals the assignment when
        nobody upstream cheated and absorbs the surplus (to be recompensed
        via :math:`E_j`) when the predecessor shed load.
        """
        return max(received - expected_forward, 0.0)

    def reports_overload(self) -> bool:
        """Whether the agent files the Phase III grievance when it
        receives more than its assignment.  Honest agents do (the reward
        ``F`` makes reporting dominant)."""
        return True

    def phase3_forward_delay(self) -> float:
        """Extra (simulated) time the agent sits on the downstream load
        before forwarding it.  Honest agents forward immediately; a
        delaying agent only pushes its successors' start times later,
        never changing any payment, so the deviation is dominated
        (Theorem 5.2 flavour)."""
        return 0.0

    # ------------------------------------------------------------------
    # Phase IV — payment
    # ------------------------------------------------------------------

    def phase4_bill(self, correct_payment: float) -> float:
        """The bill submitted to the payment infrastructure.  Deviation
        (iv) submits more than the recomputable :math:`Q_j`."""
        return correct_payment

    def phase4_proof(self, proof: "PaymentProof") -> "PaymentProof":
        """The evidence bundle attached to the bill.  Honest agents
        forward the meter reading and Λ certificate untouched; tampering
        (inflating the certificate, forging the meter message) makes the
        proof fail the audit's recomputation and draws the :math:`F/q`
        fine when challenged."""
        return proof

    # ------------------------------------------------------------------
    # Accusations
    # ------------------------------------------------------------------

    def fabricates_accusation(self) -> "GrievanceKind | None":
        """A grievance kind to fabricate against the predecessor with no
        supporting evidence (deviation (v)), or ``None``."""
        return None

    # ------------------------------------------------------------------
    # Selfish-and-annoying behaviours (Theorem 5.2)
    # ------------------------------------------------------------------

    def corrupts_data(self) -> bool:
        """Whether the agent corrupts the data blocks it forwards."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(index={self.index}, t={self.true_rate:g})"
