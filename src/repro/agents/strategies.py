"""Deviating strategies — one subclass per manipulation the paper
analyses (Lemma 5.1 deviations (i)–(v), plus misreporting and slow
execution from Lemma 5.3's case split)."""

from __future__ import annotations

from repro.agents.base import ProcessorAgent
from repro.protocol.messages import GrievanceKind

__all__ = [
    "TruthfulAgent",
    "MisbiddingAgent",
    "SlowExecutionAgent",
    "ContradictoryBidAgent",
    "MiscomputingAgent",
    "RelayTamperingAgent",
    "LoadSheddingAgent",
    "OverchargingAgent",
    "FalseAccuserAgent",
    "MalformedBidAgent",
    "SilentVictimAgent",
]


class TruthfulAgent(ProcessorAgent):
    """The honest strategy: bid truthfully, run at full capacity, follow
    every phase.  (Identical to the base class; named for readability in
    experiment tables.)"""

    strategy_name = "truthful"


class MisbiddingAgent(ProcessorAgent):
    """Reports ``bid_factor * t_i`` instead of :math:`t_i` (Lemma 5.3
    cases: under-bidding with ``factor < 1``, over-bidding with
    ``factor > 1``) but otherwise follows the protocol and executes at
    full capacity."""

    def __init__(self, index: int, true_rate: float, bid_factor: float) -> None:
        super().__init__(index, true_rate)
        if bid_factor <= 0:
            raise ValueError("bid_factor must be positive")
        self.bid_factor = float(bid_factor)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"misbid x{self.bid_factor:g}"

    def choose_bid(self) -> float:
        return self.bid_factor * self.true_rate


class SlowExecutionAgent(ProcessorAgent):
    """Bids truthfully but computes at ``slowdown * t_i`` with
    ``slowdown > 1`` (Lemma 5.3 case (ii): :math:`\\tilde w_i > t_i`).
    The meter exposes the actual rate and the bonus shrinks."""

    def __init__(self, index: int, true_rate: float, slowdown: float, *, bid_factor: float = 1.0) -> None:
        super().__init__(index, true_rate)
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1 (cannot exceed capacity)")
        self.slowdown = float(slowdown)
        self.bid_factor = float(bid_factor)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"slow x{self.slowdown:g}"

    def choose_bid(self) -> float:
        return self.bid_factor * self.true_rate

    def choose_execution_rate(self) -> float:
        return self.slowdown * self.true_rate


class ContradictoryBidAgent(ProcessorAgent):
    """Deviation (i): signs and sends *two* different Phase I bids.  The
    (honest) predecessor submits both as evidence and the agent is
    fined."""

    strategy_name = "contradictory-bids"

    def __init__(self, index: int, true_rate: float, *, second_factor: float = 1.5) -> None:
        super().__init__(index, true_rate)
        self.second_factor = float(second_factor)

    def phase1_second_bid(self, reported_w_bar: float) -> float | None:
        return reported_w_bar * self.second_factor


class MiscomputingAgent(ProcessorAgent):
    """Deviation (ii), Phase I flavour: reports an equivalent bid
    :math:`\\bar w_i` that does not satisfy the reduction recurrence
    (hoping to shrink its apparent segment time and attract a smaller
    assignment while pocketing the same bonus).  Caught by the
    successor's Phase II identity checks."""

    def __init__(self, index: int, true_rate: float, *, w_bar_factor: float = 0.8) -> None:
        super().__init__(index, true_rate)
        if w_bar_factor <= 0:
            raise ValueError("w_bar_factor must be positive")
        self.w_bar_factor = float(w_bar_factor)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"miscompute x{self.w_bar_factor:g}"

    def phase1_w_bar(self, honest_w_bar: float) -> float:
        return honest_w_bar * self.w_bar_factor


class RelayTamperingAgent(ProcessorAgent):
    """Deviation (ii), Phase II flavour: signs a wrong :math:`D_{i+1}`
    into ``G_{i+1}``, shrinking the load forwarded downstream.  The
    successor's Phase II checks fail and the agent is reported."""

    def __init__(self, index: int, true_rate: float, *, d_factor: float = 0.7) -> None:
        super().__init__(index, true_rate)
        if not 0 < d_factor:
            raise ValueError("d_factor must be positive")
        self.d_factor = float(d_factor)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"relay-tamper x{self.d_factor:g}"

    def phase2_d_next(self, honest_d_next: float) -> float:
        return honest_d_next * self.d_factor


class LoadSheddingAgent(ProcessorAgent):
    """Deviation (iii): retains :math:`\\tilde\\alpha_i < \\alpha_i` in
    Phase III, dumping the difference on the successor while still
    billing compensation for the full assignment.  The successor's Λ
    certificate proves the overload and the agent is fined
    :math:`F + (\\tilde\\alpha_{i+1} - \\alpha_{i+1})\\tilde w_{i+1}`."""

    def __init__(self, index: int, true_rate: float, *, shed_fraction: float = 0.5) -> None:
        super().__init__(index, true_rate)
        if not 0.0 <= shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in [0, 1]")
        self.shed_fraction = float(shed_fraction)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"shed {self.shed_fraction:.0%}"

    def choose_retention(self, assigned: float, received: float, expected_forward: float) -> float:
        honest = max(received - expected_forward, 0.0)
        return (1.0 - self.shed_fraction) * min(assigned, honest)


class OverchargingAgent(ProcessorAgent):
    """Deviation (iv): submits a bill inflated by ``overcharge`` beyond
    the recomputable :math:`Q_j`.  Deterred by the probabilistic audit
    fine :math:`F/q`."""

    def __init__(self, index: int, true_rate: float, *, overcharge: float = 1.0) -> None:
        super().__init__(index, true_rate)
        if overcharge < 0:
            raise ValueError("overcharge must be non-negative")
        self.overcharge = float(overcharge)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"overcharge +{self.overcharge:g}"

    def phase4_bill(self, correct_payment: float) -> float:
        return correct_payment + self.overcharge


class FalseAccuserAgent(ProcessorAgent):
    """Deviation (v): fabricates an overload grievance against its
    predecessor without evidence.  The root exculpates the accused and
    the accuser is fined."""

    strategy_name = "false-accuser"

    def fabricates_accusation(self) -> GrievanceKind | None:
        return GrievanceKind.OVERLOAD


class MalformedBidAgent(ProcessorAgent):
    """Sends garbage instead of a signed Phase I bid.  The recipient
    terminates the protocol; nobody is fined (no attributable evidence),
    nobody computes, and the saboteur forfeits its own utility — pure
    self-harm, which is why the paper needs no incentive against it."""

    strategy_name = "malformed-bid"

    def phase1_sends_malformed(self) -> bool:
        return True


class SilentVictimAgent(ProcessorAgent):
    """Absorbs overload without reporting it (forgoing the reward ``F``).

    Used to measure the reporting incentive: the recompense ``E`` still
    covers the extra work, but the reward is lost, so reporting dominates.
    """

    strategy_name = "silent-victim"

    def reports_overload(self) -> bool:
        return False
