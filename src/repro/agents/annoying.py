"""Selfish-and-annoying agents (paper Section 4, end, and Theorem 5.2).

A *selfish-but-agreeable* agent deviates only for strict gain; a
*selfish-and-annoying* agent deviates whenever deviation does not strictly
hurt it.  Its signature behaviours — corrupting data, sending the same
data to multiple children — leave its own utility unchanged under the
basic payment rule, so only the *solution bonus* ``S`` of eq. 4.13
constrains it: corrupting blocks lowers the probability that the
(verifiable) solution is found, which costs the corruptor its share of
``s``.
"""

from __future__ import annotations

from repro.agents.base import ProcessorAgent

__all__ = ["AnnoyingAgent", "DataCorruptingAgent", "DuplicatingAgent"]


class AnnoyingAgent(ProcessorAgent):
    """Base class for selfish-and-annoying behaviours.

    Subclasses report how much of the load that passes through them is
    rendered unusable via :meth:`wasted_fraction`.
    """

    strategy_name = "annoying"

    def wasted_fraction(self) -> float:
        """Fraction of the load *forwarded through this agent* whose
        processing is wasted by the agent's behaviour (0 for agreeable
        agents)."""
        return 0.0


class DataCorruptingAgent(AnnoyingAgent):
    """Corrupts ``corrupt_fraction`` of the data it forwards.  Downstream
    processors compute garbage on those blocks; any solution they
    contained is lost."""

    def __init__(self, index: int, true_rate: float, *, corrupt_fraction: float = 0.5) -> None:
        super().__init__(index, true_rate)
        if not 0.0 <= corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in [0, 1]")
        self.corrupt_fraction = float(corrupt_fraction)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"corrupt {self.corrupt_fraction:.0%}"

    def corrupts_data(self) -> bool:
        return self.corrupt_fraction > 0.0

    def wasted_fraction(self) -> float:
        return self.corrupt_fraction


class DuplicatingAgent(AnnoyingAgent):
    """Sends the same blocks again in place of ``duplicate_fraction`` of
    the distinct data it should forward; the displaced blocks are never
    processed anywhere, so any solution they contained is lost."""

    def __init__(self, index: int, true_rate: float, *, duplicate_fraction: float = 0.5) -> None:
        super().__init__(index, true_rate)
        if not 0.0 <= duplicate_fraction <= 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1]")
        self.duplicate_fraction = float(duplicate_fraction)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        return f"duplicate {self.duplicate_fraction:.0%}"

    def wasted_fraction(self) -> float:
        return self.duplicate_fraction
