"""Package version (single source of truth for runtime introspection)."""

__version__ = "1.0.0"
