"""Visualization helpers (terminal-friendly, no plotting dependencies)."""

from repro.viz.gantt import render_gantt, render_schedule_table

__all__ = ["render_gantt", "render_schedule_table"]
