"""ASCII Gantt rendering of execution traces — the paper's Fig. 2.

The paper draws communication above the time axis and computation below
it; here each processor gets a ``comm`` row (sends) and a ``comp`` row
(computation), which carries the same information in a terminal.
"""

from __future__ import annotations

import numpy as np

from repro.sim.trace import GanttTrace

__all__ = ["render_gantt", "render_schedule_table"]


def render_gantt(trace: GanttTrace, n_procs: int, *, width: int = 72) -> str:
    """Render a trace as an ASCII Gantt chart.

    Parameters
    ----------
    trace:
        The execution trace (e.g. from
        :func:`repro.sim.simulate_linear_chain`).
    n_procs:
        Number of processors (rows).
    width:
        Character columns representing the makespan.

    Returns
    -------
    str
        A multi-line chart; ``=`` marks communication (sending), ``#``
        marks computation.
    """
    horizon = max(
        (iv.end for iv in trace.intervals),
        default=0.0,
    )
    if horizon <= 0:
        return "(empty trace)"
    scale = (width - 1) / horizon

    def bar(kind: str, proc: int, mark: str) -> str:
        row = [" "] * width
        for iv in trace.intervals:
            if iv.kind == kind and iv.proc == proc:
                lo = int(round(iv.start * scale))
                hi = max(int(round(iv.end * scale)), lo + 1)
                for col in range(lo, min(hi, width)):
                    row[col] = mark
        return "".join(row)

    lines = [f"time 0 {'-' * (width - 14)} {horizon:.4g}"]
    for proc in range(n_procs):
        lines.append(f"P{proc:<3d} comm |{bar('send', proc, '=')}|")
        lines.append(f"     comp |{bar('compute', proc, '#')}|")
    return "\n".join(lines)


def render_schedule_table(
    alpha: np.ndarray,
    finish_times: np.ndarray,
    *,
    received: np.ndarray | None = None,
) -> str:
    """A per-processor table of fractions and finishing times — the
    numeric companion to the Gantt chart."""
    lines = [f"{'proc':>5} {'alpha':>12} {'received':>12} {'finish':>12}"]
    for i, (a, t) in enumerate(zip(alpha, finish_times)):
        d = received[i] if received is not None else float("nan")
        lines.append(f"P{i:<4d} {a:>12.6f} {d:>12.6f} {t:>12.6f}")
    return "\n".join(lines)
