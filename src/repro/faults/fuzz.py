"""Fuzzed scenario generation with shrink-on-failure.

The catalog (:mod:`repro.faults.catalog`) pins one scenario per
deviation class; this module explores the space *between* catalog
entries: random fault combinations — strategic coalitions,
infrastructure fault mixes, and Byzantine lies composed with
infrastructure faults, across every supported topology — each
gated by the scenario runner's verdict checker.  A failing draw is
shrunk to a minimal failing spec by greedy delta-debugging (drop one
fault at a time while the failure reproduces), so a fuzz report names
the smallest counterexample, not the noisiest one.

Determinism: the generator draws everything from one seeded stream, and
each generated scenario gets a unique name (``fuzz/<seed>/<index>``),
which is what the runner hashes for its per-run network/activation
streams — a ``(seed, count)`` pair always produces the same scenarios,
verdicts, and report at any ``--jobs``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.faults.spec import (
    FAULT_KINDS,
    FaultSpec,
    ScenarioSpec,
    TOPOLOGY_KINDS,
)

__all__ = ["FuzzReport", "fuzz_scenarios", "random_scenario", "shrink_scenario"]

#: Kinds whose parameter is drawn as a small positive integer.
_COUNT_KINDS = {"net_drop", "net_dup", "msg_corrupt", "byz_suppress"}


def _draw_param(kind: str, rng: np.random.Generator) -> float | None:
    """A valid, deterministic parameter for ``kind``."""
    info = FAULT_KINDS[kind]
    if kind == "crash":
        return float(rng.choice([1, 3, 4]))
    if kind == "crash_exec":
        return float(np.round(rng.uniform(0.1, 0.9), 3))
    if kind in _COUNT_KINDS:
        return float(int(rng.integers(1, 4)))
    if kind == "byz_equivocate":
        # Spec validation forbids a factor of exactly 1 (no contradiction).
        return float(np.round(rng.uniform(1.2, 2.0), 3))
    if kind == "byz_meter":
        # Spec validation requires inflation strictly above 1.
        return float(np.round(rng.uniform(1.5, 3.0), 3))
    if info.param is None:
        return None
    default = info.default_param if info.default_param is not None else 1.0
    return float(np.round(default * rng.uniform(0.6, 1.6), 3))


def random_scenario(
    rng: np.random.Generator,
    index: int,
    *,
    seed: int,
    m: int = 4,
    max_faults: int = 3,
    runs: int = 1,
) -> ScenarioSpec:
    """Draw one random scenario (topology, layer, fault combination).

    Every draw consumes a fixed, outcome-independent prefix of the
    stream per fault slot, so scenario ``i`` of a given seed is stable.
    """
    topology = str(rng.choice(["linear", "star", "tree"]))
    if topology == "linear":
        u_layer = rng.random()
        if u_layer < 1 / 3:
            layer = "infrastructure"
        elif u_layer < 2 / 3:
            layer = "byzantine"
        else:
            layer = "strategic"
    else:
        layer = "strategic"
    pool = sorted(
        kind
        for kind in TOPOLOGY_KINDS[topology]
        if FAULT_KINDS[kind].layer == layer
    )
    # Byzantine scenarios compose with infrastructure faults (both run
    # on the resilient runtime): the first fault is drawn pure-byzantine,
    # the rest from the combined runtime pool.
    mixed_pool = pool
    if layer == "byzantine":
        mixed_pool = sorted(
            kind
            for kind in TOPOLOGY_KINDS[topology]
            if FAULT_KINDS[kind].layer in ("byzantine", "infrastructure")
        )
    n_faults = int(rng.integers(1, max_faults + 1))
    faults: list[FaultSpec] = []
    for slot in range(n_faults):
        kind = str(rng.choice(pool if slot == 0 else mixed_pool))
        info = FAULT_KINDS[kind]
        hi = m - 1 if (info.needs_successor and m > 1) else m
        target = int(rng.integers(1, hi + 1))
        faults.append(FaultSpec(kind, target=target, param=_draw_param(kind, rng)))
    return ScenarioSpec(
        name=f"fuzz/{seed}/{index}",
        description=f"fuzzed {layer} combination on {topology}",
        faults=tuple(faults),
        m=m,
        runs=runs,
        topology=topology,
    )


def shrink_scenario(
    scenario: ScenarioSpec, fails: Callable[[ScenarioSpec], bool]
) -> ScenarioSpec:
    """Greedy delta-debugging: the smallest fault subset still failing.

    Repeatedly tries dropping one fault; whenever the reduced scenario
    still fails, the reduction is kept.  ``fails`` must be deterministic
    (the runner is, given a fixed seed).
    """
    current = scenario
    shrinking = True
    while shrinking and len(current.faults) > 1:
        shrinking = False
        for drop in range(len(current.faults)):
            faults = current.faults[:drop] + current.faults[drop + 1 :]
            candidate = dataclasses.replace(
                current, name=current.name + "-", faults=faults
            )
            if fails(candidate):
                current = candidate
                shrinking = True
                break
    return current


@dataclass
class FuzzReport:
    """Outcome of one fuzz batch."""

    seed: int
    count: int
    cases: list[dict[str, Any]] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [f"fuzz seed={self.seed} count={self.count}"]
        for case in self.cases:
            status = "ok" if case["ok"] else "FAIL"
            kinds = "+".join(f["kind"] for f in case["scenario"]["faults"]) or "none"
            lines.append(
                f"  [{status}] {case['scenario']['name']} "
                f"({case['scenario']['topology']}, {kinds})"
            )
        for failure in self.failures:
            lines.append(f"  minimal failing spec for {failure['scenario']['name']}:")
            lines.append(f"    {failure['shrunk']}")
        lines.append(
            f"{len(self.cases)} scenarios, {len(self.failures)} failing"
        )
        return "\n".join(lines)


def fuzz_scenarios(
    seed: int,
    count: int,
    *,
    jobs: int = 1,
    m: int = 4,
    max_faults: int = 3,
    runs: int = 1,
) -> FuzzReport:
    """Generate and check ``count`` random scenarios.

    Each scenario runs through :func:`repro.faults.runner.run_scenario`
    with the batch seed; any scenario whose verdict checks fail is
    shrunk to a minimal failing spec and reported.  The report is a pure
    function of ``(seed, count, m, max_faults, runs)`` — ``jobs`` only
    parallelizes the per-scenario runs.
    """
    from repro.faults.runner import run_scenario

    rng = np.random.default_rng([seed, 0xFA112])
    report = FuzzReport(seed=seed, count=count)

    def fails(spec: ScenarioSpec) -> bool:
        return not run_scenario(spec, seed=seed, jobs=1).all_ok

    for index in range(count):
        scenario = random_scenario(
            rng, index, seed=seed, m=m, max_faults=max_faults, runs=runs
        )
        result = run_scenario(scenario, seed=seed, jobs=jobs)
        case = {
            "scenario": scenario.to_dict(),
            "ok": result.all_ok,
            "runs": [
                {"run": r["run"], "ok": r["ok"], "topology": r["topology"]}
                for r in result.runs
            ],
        }
        report.cases.append(case)
        if not result.all_ok:
            shrunk = shrink_scenario(scenario, fails)
            report.failures.append(
                {
                    "scenario": scenario.to_dict(),
                    "shrunk": shrunk.to_dict(),
                    "runs": [r for r in result.runs if not r["ok"]],
                }
            )
    return report
