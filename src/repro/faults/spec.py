"""Fault and scenario specifications.

A :class:`FaultSpec` names one injectable deviation (which protocol
manipulation, against whom, how strong, with what activation
probability); a :class:`ScenarioSpec` bundles several of them with the
population parameters.  Both round-trip through plain dicts and JSON so
scenarios can live in files, CLI arguments, and CI matrices.

The :data:`FAULT_KINDS` registry is the catalog's source of truth: every
kind carries its parameter semantics, the theorem/lemma it exercises,
and the *expected* mechanism response.  Strategic deviations expect
``detected`` (provably attributed and fined) or ``dominated`` (the
deviator's utility cannot exceed the truthful baseline); infrastructure
faults — handled by :mod:`repro.runtime` rather than the incentive
machinery — expect ``tolerated`` (absorbed with no loss of capacity),
``degraded`` (completed over fewer processors, with a makespan penalty)
or ``detected`` (rejected with evidence); Byzantine faults (nodes that
*lie* — same runtime, composable with infrastructure faults) expect
``detected`` or ``tolerated-degraded`` (unattributable by design, so
either absorbed or survived at reduced capacity).  The scenario runner
checks the observed outcome against this expectation.

Scenarios also carry a ``topology``: the chain mechanism (``linear``),
its star/bus and tree siblings (``star``/``tree``), each supporting the
subset of deviations its protocol surface exposes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "FAULT_KINDS",
    "FaultKind",
    "FaultSpec",
    "ScenarioSpec",
    "TOPOLOGIES",
    "TOPOLOGY_KINDS",
]


@dataclass(frozen=True)
class FaultKind:
    """Registry entry for one injectable fault kind."""

    name: str
    description: str
    #: Meaning of :attr:`FaultSpec.param` (``None`` = kind takes no parameter).
    param: str | None
    default_param: float | None
    #: Paper result the deviation exercises.
    theorem: str
    #: ``"detected"`` (attributed + fined) or ``"dominated"`` (utility
    #: <= truthful baseline; possibly both hold, this is the guarantee
    #: the runner asserts).
    expected: str
    #: Protocol phase the deviation acts in (for reporting; ``crash``
    #: takes the phase as its parameter instead).
    phase: int | None = None
    #: The deviation needs a downstream neighbour (cannot target ``P_m``).
    needs_successor: bool = False
    #: ``"strategic"`` (a self-interested agent deviates; Theorems
    #: 5.1-5.4), ``"infrastructure"`` (the network or hardware fails) or
    #: ``"byzantine"`` (a node lies outright); the latter two are
    #: handled — and compose — in :mod:`repro.runtime.session`.
    layer: str = "strategic"


_KINDS = (
    FaultKind("misbid", "report bid_factor * t_i instead of the true rate",
              "bid factor", 1.5, "Thm 5.3 / Lemma 5.3", "dominated", phase=1),
    FaultKind("misreport_z", "fold a misreported link time into the equivalent bid",
              "z factor", 1.5, "Lemma 5.1 (ii)", "detected", phase=1, needs_successor=True),
    FaultKind("slow", "execute at slowdown * t_i (meter exposes the real rate)",
              "slowdown", 2.0, "Thm 5.3 case (ii)", "dominated", phase=3),
    FaultKind("contradict", "sign and send two different Phase I bids",
              "second-bid factor", 1.5, "Lemma 5.1 (i)", "detected", phase=1),
    FaultKind("miscompute", "report an equivalent bid violating the reduction recurrence",
              "w_bar factor", 0.8, "Lemma 5.1 (ii)", "detected", phase=1),
    FaultKind("relay_tamper", "sign a wrong D_{i+1} into the relayed G bundle",
              "D factor", 0.7, "Lemma 5.1 (ii)", "detected", phase=2, needs_successor=True),
    FaultKind("echo_tamper", "tamper with the countersigned echo of the successor's bid",
              "echo factor", 1.2, "Lemma 5.1 (ii)", "detected", phase=2, needs_successor=True),
    FaultKind("shed", "retain less than assigned, dumping load downstream",
              "shed fraction", 0.5, "Thm 5.1 / Lemma 5.1 (iii)", "detected", phase=3,
              needs_successor=True),
    FaultKind("msg_delay", "sit on the downstream load before forwarding it",
              "delay (time units)", 0.5, "Thm 5.2", "dominated", phase=3, needs_successor=True),
    FaultKind("msg_drop", "drop the Phase I message instead of sending it",
              None, None, "Thm 5.2", "dominated", phase=1),
    FaultKind("sig_corrupt", "send a corrupted / unverifiable signature",
              None, None, "Thm 5.2", "dominated", phase=1),
    FaultKind("overcharge", "bill more than the recomputable payment Q_j",
              "overcharge amount", 1.0, "Lemma 5.1 (iv)", "detected", phase=4),
    FaultKind("meter_tamper", "forge the meter reading inside the payment proof",
              "rate factor", 0.5, "Lemma 5.1 (iv)", "detected", phase=4),
    FaultKind("lambda_tamper", "inflate the Lambda certificate inside the payment proof",
              "extra blocks", 1000.0, "Lemma 5.1 (iv)", "detected", phase=4),
    FaultKind("false_accuse", "fabricate an overload grievance without evidence",
              None, None, "Lemma 5.1 (v)", "detected", phase=3),
    FaultKind("silent_victim", "absorb an overload without reporting it",
              None, None, "Thm 5.1 (reporting incentive)", "dominated", phase=3),
    FaultKind("no_validate", "skip the Phase II checks on the incoming G bundle",
              None, None, "Lemma 5.1 (ii), victim side", "dominated", phase=2),
    FaultKind("crash", "stop participating at the given phase (1, 3 or 4)",
              "crash phase", 3.0, "Thm 5.4 (participation)", "dominated"),
    # -- infrastructure faults (repro.runtime) -------------------------
    FaultKind("net_drop", "the network loses the target's first k bid sends",
              "sends lost", 2.0, "Thm 5.2 (runtime: retry/backoff)", "tolerated",
              phase=1, layer="infrastructure"),
    FaultKind("net_delay", "the network adds fixed latency to the target's deliveries",
              "latency (time units)", 0.5, "Thm 5.2 (runtime: deadlines)", "tolerated",
              phase=1, layer="infrastructure"),
    FaultKind("net_dup", "the network delivers the target's first k sends twice",
              "duplicated sends", 1.0, "Thm 5.2 (runtime: dedup)", "tolerated",
              phase=1, layer="infrastructure"),
    FaultKind("msg_corrupt", "the network damages the signature on the target's first k sends",
              "corrupted sends", 1.0, "Lemma 5.2 (runtime: verification)", "detected",
              phase=1, layer="infrastructure"),
    FaultKind("crash_exec", "the target's hardware dies partway through its compute window",
              "crash fraction of compute window", 0.5, "Thm 5.4 (runtime: re-allocation)",
              "degraded", phase=3, layer="infrastructure"),
    # -- Byzantine faults (repro.runtime): nodes that lie, not crash ---
    FaultKind("byz_equivocate", "sign two different Phase I bids to different parties",
              "second-bid factor", 1.5, "Lemma 5.1 (i) (runtime: contradiction proof)",
              "detected", phase=1, layer="byzantine"),
    FaultKind("byz_replay", "forge/replay a relay message claiming another originator",
              "forged-value factor", 0.8, "Lemma 5.1 (ii) (runtime: channel attribution)",
              "detected", phase=2, layer="byzantine"),
    FaultKind("byz_false_crash", "falsely accuse a live peer of having crashed",
              None, None, "Lemma 5.1 (v) (runtime: liveness records)",
              "detected", phase=3, layer="byzantine"),
    FaultKind("byz_meter", "bill an inflated work claim against the root's meter",
              "billing inflation factor (> 1)", 2.0, "Lemma 5.1 (iv) (runtime: meter audit)",
              "detected", phase=4, layer="byzantine"),
    FaultKind("byz_suppress", "selectively swallow the downstream neighbour's sends",
              "sends suppressed", 2.0, "Thm 5.2 (runtime: unattributable, retries absorb)",
              "tolerated-degraded", phase=1, layer="byzantine"),
)

#: name -> :class:`FaultKind` for every injectable deviation.
FAULT_KINDS: dict[str, FaultKind] = {k.name: k for k in _KINDS}

#: Supported scenario topologies.
TOPOLOGIES = ("linear", "star", "tree")

#: Fault kinds each topology's protocol surface exposes.  The chain
#: mechanism exercises the full strategic catalog plus the runtime's
#: infrastructure faults; the star mechanism has no relaying (so no
#: Phase II/relay deviations — its hooks are bids, contradictions,
#: execution rate, work abandonment, and billing); the tree baseline
#: models the tamper-proof level only (bids and execution rate).
TOPOLOGY_KINDS: dict[str, frozenset[str]] = {
    "linear": frozenset(FAULT_KINDS),
    "star": frozenset({"misbid", "contradict", "slow", "shed", "overcharge", "crash"}),
    "tree": frozenset({"misbid", "slow"}),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Attributes
    ----------
    kind:
        A :data:`FAULT_KINDS` name.
    target:
        1-based processor index, or ``None`` to draw the target
        deterministically from the per-run activation stream.
    param:
        Kind-specific magnitude (``None`` = the kind's default).
    probability:
        Per-run activation probability; the Bernoulli draw comes from
        the seed-derived activation stream, so activation is a pure
        function of ``(scenario, run index, seed)``.
    """

    kind: str
    target: int | None = None
    param: float | None = None
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(FAULT_KINDS)}"
            )
        if self.target is not None and self.target < 1:
            raise ValueError("fault target must be a 1-based processor index")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("activation probability must be in [0, 1]")
        if self.kind == "crash" and self.param is not None and int(self.param) not in (1, 3, 4):
            raise ValueError("crash phase must be 1, 3 or 4")
        if self.kind == "crash_exec" and self.param is not None and not 0.0 <= self.param <= 1.0:
            raise ValueError("crash_exec fraction must be in [0, 1]")
        if (
            self.kind in ("net_drop", "net_delay", "net_dup", "msg_corrupt", "byz_suppress")
            and self.param is not None
            and self.param < 0
        ):
            raise ValueError(f"{self.kind} parameter must be non-negative")
        if self.kind == "byz_equivocate" and self.param is not None and self.param == 1.0:
            raise ValueError(
                "byz_equivocate second-bid factor must differ from 1 "
                "(identical bids contradict nothing)"
            )
        if self.kind == "byz_meter" and self.param is not None and self.param <= 1.0:
            raise ValueError("byz_meter inflation factor must exceed 1")

    @property
    def info(self) -> FaultKind:
        return FAULT_KINDS[self.kind]

    @property
    def effective_param(self) -> float | None:
        return self.param if self.param is not None else self.info.default_param

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = {f for f in ("kind", "target", "param", "probability")}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultSpec fields: {sorted(extra)}")
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named adversarial scenario: faults plus population parameters.

    ``runs`` mechanism instances are drawn on random networks of the
    scenario's ``topology`` (``m`` strategic processors beside the
    root); every fault is (probabilistically) injected into each run.
    Multiple faults form a coalition — the runner evaluates both
    individual and joint utility against the truthful baseline.
    Infrastructure- and byzantine-layer faults route to the resilient
    runtime instead of the incentive mechanism; the two runtime layers
    compose with each other (lying nodes on a crashing network) but not
    with strategic faults (the mechanism and runtime answer different
    questions on different execution paths).
    """

    name: str
    description: str = ""
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)
    m: int = 4
    runs: int = 3
    #: Audit probability q; the catalog pins 1.0 so Phase IV detection
    #: is deterministic (X3 covers the q < 1 expected-fine economics).
    audit_probability: float = 1.0
    #: Which mechanism family the scenario runs against.
    topology: str = "linear"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.m < 1:
            raise ValueError("m must be at least 1")
        if self.runs < 1:
            raise ValueError("runs must be at least 1")
        if not 0.0 < self.audit_probability <= 1.0:
            raise ValueError("audit_probability must be in (0, 1]")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        supported = TOPOLOGY_KINDS[self.topology]
        layers = {f.info.layer for f in self.faults}
        if "strategic" in layers and len(layers) > 1:
            raise ValueError(
                "cannot mix strategic faults with runtime-layer "
                "(infrastructure/byzantine) faults in one scenario"
            )
        if layers & {"infrastructure", "byzantine"} and self.topology != "linear":
            raise ValueError(
                "infrastructure and byzantine faults run on the linear runtime only"
            )
        for fault in self.faults:
            if fault.kind not in supported:
                raise ValueError(
                    f"fault {fault.kind!r} is not supported on topology "
                    f"{self.topology!r} (supported: {sorted(supported)})"
                )
            if fault.target is not None and fault.target > self.m:
                raise ValueError(
                    f"fault target {fault.target} outside 1..{self.m}"
                )
            if fault.info.needs_successor and fault.target == self.m and self.m > 1:
                raise ValueError(
                    f"fault {fault.kind!r} needs a successor; target {fault.target} is terminal"
                )

    @property
    def layer(self) -> str:
        """``"strategic"``, ``"infrastructure"`` or ``"byzantine"``
        (``"strategic"`` when the scenario has no faults — the zero-fault
        differential runs the mechanism path).  A scenario mixing
        byzantine and infrastructure faults — the one permitted mix, both
        run by the resilient runtime — reports ``"byzantine"``."""
        layers = {fault.info.layer for fault in self.faults}
        if "byzantine" in layers:
            return "byzantine"
        for fault in self.faults:
            return fault.info.layer
        return "strategic"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
            "m": self.m,
            "runs": self.runs,
            "audit_probability": self.audit_probability,
            "topology": self.topology,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        faults = tuple(FaultSpec.from_dict(f) for f in data.pop("faults", ()))
        known = {"name", "description", "m", "runs", "audit_probability", "topology"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(extra)}")
        return cls(faults=faults, **data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
