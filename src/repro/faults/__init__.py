"""Declarative fault injection and adversarial scenarios.

The mechanism's whole point is robustness to strategic deviation
(Theorems 5.1-5.4): every protocol manipulation is either *detected and
fined* or *utility-dominated* by honest play.  This package turns that
claim into an executable test surface:

- :mod:`repro.faults.spec` — :class:`FaultSpec`/:class:`ScenarioSpec`,
  JSON-round-trippable descriptions of injectable faults with
  deterministic, seed-derived activation.
- :mod:`repro.faults.injector` — :class:`FaultyAgent`, a single agent
  class that applies active fault effects through the existing
  :class:`~repro.agents.base.ProcessorAgent` hook seams and falls
  through to the honest behaviour otherwise (no forked code paths).
- :mod:`repro.faults.catalog` — the built-in scenario catalog covering
  every deviation class the paper analyses.
- :mod:`repro.faults.runner` — :func:`run_scenario`, a deterministic
  parallel scenario runner producing merged traces (with
  ``fault_injected``/``fault_detected`` events) and per-run verdicts.
- :mod:`repro.faults.fuzz` — :func:`fuzz_scenarios`, randomized fault
  combinations gated by the verdict checker, with shrink-on-failure
  minimal failing spec reports.
"""

from repro.faults.catalog import BUILTIN_SCENARIOS, get_scenario
from repro.faults.fuzz import FuzzReport, fuzz_scenarios
from repro.faults.injector import FaultyAgent, build_agents
from repro.faults.spec import (
    FAULT_KINDS,
    TOPOLOGIES,
    TOPOLOGY_KINDS,
    FaultKind,
    FaultSpec,
    ScenarioSpec,
)
from repro.faults.runner import ScenarioResult, run_scenario

__all__ = [
    "BUILTIN_SCENARIOS",
    "FAULT_KINDS",
    "TOPOLOGIES",
    "TOPOLOGY_KINDS",
    "FaultKind",
    "FaultSpec",
    "FaultyAgent",
    "FuzzReport",
    "ScenarioResult",
    "ScenarioSpec",
    "build_agents",
    "fuzz_scenarios",
    "get_scenario",
    "run_scenario",
]
