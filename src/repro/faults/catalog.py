"""Built-in adversarial scenarios — one per catalogued deviation class.

Every :data:`~repro.faults.spec.FAULT_KINDS` entry appears in at least
one scenario, plus a zero-fault differential baseline (``none``), a
collusive coalition, and a probabilistic-activation demo.  The X11
experiment sweeps this whole catalog and asserts the Theorem 5.1-5.4
guarantee scenario by scenario.
"""

from __future__ import annotations

from repro.faults.spec import FaultSpec, ScenarioSpec

__all__ = ["BUILTIN_SCENARIOS", "get_scenario"]


def _scenario(name: str, description: str, *faults: FaultSpec, **kwargs) -> ScenarioSpec:
    return ScenarioSpec(name=name, description=description, faults=faults, **kwargs)


_SCENARIOS = (
    _scenario(
        "none",
        "zero faults: the differential baseline (bit-identical to the honest path)",
    ),
    _scenario(
        "misbid_over",
        "one agent over-reports its rate by 1.5x (Thm 5.3)",
        FaultSpec("misbid", target=2, param=1.5),
    ),
    _scenario(
        "misbid_under",
        "one agent under-reports its rate by 0.6x (Thm 5.3)",
        FaultSpec("misbid", target=2, param=0.6),
    ),
    _scenario(
        "slow",
        "one agent throttles execution to 2x its true rate (Thm 5.3 case ii)",
        FaultSpec("slow", target=2, param=2.0),
    ),
    _scenario(
        "contradict",
        "one agent signs two different Phase I bids (Lemma 5.1 i)",
        FaultSpec("contradict", target=2),
    ),
    _scenario(
        "miscompute",
        "one agent reports a w_bar violating the recurrence (Lemma 5.1 ii)",
        FaultSpec("miscompute", target=2, param=0.8),
    ),
    _scenario(
        "misreport_z",
        "one agent folds a 1.5x misreported link time into its w_bar (Lemma 5.1 ii)",
        FaultSpec("misreport_z", target=2, param=1.5),
    ),
    _scenario(
        "relay_tamper",
        "one agent signs a wrong D_{i+1} into the relayed bundle (Lemma 5.1 ii)",
        FaultSpec("relay_tamper", target=2, param=0.7),
    ),
    _scenario(
        "echo_tamper",
        "one agent tampers with the countersigned successor-bid echo (Lemma 5.1 ii)",
        FaultSpec("echo_tamper", target=2, param=1.2),
    ),
    _scenario(
        "shed",
        "one agent sheds half its assignment downstream (Thm 5.1)",
        FaultSpec("shed", target=2, param=0.5),
    ),
    _scenario(
        "msg_delay",
        "one agent delays forwarding by 0.5 time units (Thm 5.2)",
        FaultSpec("msg_delay", target=2, param=0.5),
    ),
    _scenario(
        "msg_drop",
        "one agent drops its Phase I message, aborting the run (Thm 5.2)",
        FaultSpec("msg_drop", target=2),
    ),
    _scenario(
        "sig_corrupt",
        "one agent sends an unverifiable signature, aborting the run (Thm 5.2)",
        FaultSpec("sig_corrupt", target=2),
    ),
    _scenario(
        "overcharge",
        "one agent bills 1.0 above the provable payment (Lemma 5.1 iv)",
        FaultSpec("overcharge", target=2, param=1.0),
    ),
    _scenario(
        "meter_tamper",
        "one agent forges the meter reading in its payment proof (Lemma 5.1 iv)",
        FaultSpec("meter_tamper", target=2, param=0.5),
    ),
    _scenario(
        "lambda_tamper",
        "one agent inflates its Lambda certificate in the payment proof (Lemma 5.1 iv)",
        FaultSpec("lambda_tamper", target=2, param=1000.0),
    ),
    _scenario(
        "false_accuse",
        "one agent fabricates an overload grievance (Lemma 5.1 v) — the accuser is fined",
        FaultSpec("false_accuse", target=3),
    ),
    _scenario(
        "no_validate",
        "one agent skips the Phase II checks (forfeits nothing when nobody cheats)",
        FaultSpec("no_validate", target=2),
    ),
    _scenario(
        "crash_phase1",
        "one agent stops participating in Phase I (Thm 5.4)",
        FaultSpec("crash", target=2, param=1),
    ),
    _scenario(
        "crash_phase3",
        "one agent stops computing in Phase III, dumping its load (Thm 5.4)",
        FaultSpec("crash", target=2, param=3),
    ),
    _scenario(
        "crash_phase4",
        "one agent never bills in Phase IV (Thm 5.4)",
        FaultSpec("crash", target=2, param=4),
    ),
    _scenario(
        "collude_shed_silent",
        "coalition: P2 sheds onto P3, who silently absorbs the overload (Thm 5.1/X8)",
        FaultSpec("shed", target=2, param=0.5),
        FaultSpec("silent_victim", target=3),
    ),
    _scenario(
        "random_target_shed",
        "shedding with seed-derived target selection",
        FaultSpec("shed", target=None, param=0.5),
        runs=4,
    ),
    _scenario(
        "flaky_misbid",
        "probabilistic activation: the misbid fires in ~half the runs",
        FaultSpec("misbid", target=2, param=1.5, probability=0.5),
        runs=6,
    ),
    # -- star/bus topology (DLS-SL, the [14] sibling) ------------------
    _scenario(
        "star_misbid",
        "star: one child over-reports its rate by 1.5x (marginal bonus dominates)",
        FaultSpec("misbid", target=2, param=1.5),
        topology="star",
    ),
    _scenario(
        "star_contradict",
        "star: one child signs two different bids (the root detects directly)",
        FaultSpec("contradict", target=2),
        topology="star",
    ),
    _scenario(
        "star_slow",
        "star: one child throttles execution to 2x its true rate",
        FaultSpec("slow", target=2, param=2.0),
        topology="star",
    ),
    _scenario(
        "star_abandon",
        "star: one child abandons half its assignment (meter-detected; no downstream victim)",
        FaultSpec("shed", target=2, param=0.5),
        topology="star",
    ),
    _scenario(
        "star_overcharge",
        "star: one child bills 1.0 above the provable payment (audit-detected)",
        FaultSpec("overcharge", target=2, param=1.0),
        topology="star",
    ),
    # -- tree topology (DLS-T, the [9] sibling) ------------------------
    _scenario(
        "tree_misbid",
        "tree: one node over-reports its rate by 1.5x (pair bonus dominates)",
        FaultSpec("misbid", target=2, param=1.5),
        topology="tree",
    ),
    _scenario(
        "tree_slow",
        "tree: one node throttles execution to 2x its true rate",
        FaultSpec("slow", target=2, param=2.0),
        topology="tree",
    ),
    # -- infrastructure faults (repro.runtime resilience layer) --------
    _scenario(
        "net_flaky_link",
        "runtime: the network loses P2's first two bid sends (retries absorb it)",
        FaultSpec("net_drop", target=2, param=2),
    ),
    _scenario(
        "net_dead_link",
        "runtime: every send from P2 is lost; it is excluded before allocation",
        FaultSpec("net_drop", target=2, param=99),
    ),
    _scenario(
        "net_slow_dup",
        "runtime: P3's deliveries are delayed and P1's first send is duplicated",
        FaultSpec("net_delay", target=3, param=0.4),
        FaultSpec("net_dup", target=1, param=1),
    ),
    _scenario(
        "net_corrupt",
        "runtime: P2's first send arrives with a damaged signature (rejected, grievance filed)",
        FaultSpec("msg_corrupt", target=2, param=1),
    ),
    _scenario(
        "crash_midrun",
        "runtime: P2 dies halfway through its compute window; load re-allocated over survivors",
        FaultSpec("crash_exec", target=2, param=0.5),
    ),
    _scenario(
        "crash_cascade",
        "runtime: two processors die in successive epochs; two re-allocations",
        FaultSpec("crash_exec", target=1, param=0.4),
        FaultSpec("crash_exec", target=3, param=0.6),
    ),
    # -- Byzantine faults (lying nodes on the resilient runtime) -------
    _scenario(
        "byz_equivocate",
        "byzantine: P2 signs two different Phase I bids — contradiction proven, fined, excluded",
        FaultSpec("byz_equivocate", target=2, param=1.5),
    ),
    _scenario(
        "byz_replay",
        "byzantine: P2 forges a relay message in P3's name — channel attribution convicts the signer",
        FaultSpec("byz_replay", target=2, param=0.8),
    ),
    _scenario(
        "byz_false_crash",
        "byzantine: P3 falsely accuses a live neighbour of crashing — root's liveness records exculpate",
        FaultSpec("byz_false_crash", target=3),
    ),
    _scenario(
        "byz_meter",
        "byzantine: P2 bills double its metered work — the root's meter rejects the claim",
        FaultSpec("byz_meter", target=2, param=2.0),
    ),
    _scenario(
        "byz_suppress",
        "byzantine: P2 swallows its neighbour's first two sends — unattributable, absorbed by retries",
        FaultSpec("byz_suppress", target=2, param=2),
    ),
    _scenario(
        "byz_crash_mix",
        "byzantine x crash: an equivocator and a meter liar while P3's hardware dies midrun",
        FaultSpec("byz_equivocate", target=2, param=1.5),
        FaultSpec("byz_meter", target=4, param=2.0),
        FaultSpec("crash_exec", target=3, param=0.5),
    ),
    _scenario(
        "byz_storm",
        "byzantine storm: every lie at once on a flaky network, one crash — ledger still balances",
        FaultSpec("byz_equivocate", target=1, param=1.4),
        FaultSpec("byz_false_crash", target=2),
        FaultSpec("byz_meter", target=3, param=2.5),
        FaultSpec("byz_suppress", target=3, param=2),
        FaultSpec("net_drop", target=4, param=1),
        FaultSpec("crash_exec", target=4, param=0.6),
    ),
)

#: name -> :class:`~repro.faults.spec.ScenarioSpec` for the whole catalog.
BUILTIN_SCENARIOS: dict[str, ScenarioSpec] = {s.name: s for s in _SCENARIOS}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario by name (:class:`KeyError`-free)."""
    try:
        return BUILTIN_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(BUILTIN_SCENARIOS)}"
        ) from None
