"""Wiring fault specs into the mechanism's existing hook seams.

One agent class, :class:`FaultyAgent`, carries the *active* faults for
its position and applies each effect inside the corresponding
:class:`~repro.agents.base.ProcessorAgent` hook; every hook without an
active fault falls through to the inherited honest behaviour.  The
honest code paths are never forked — a :class:`FaultyAgent` with no
active faults is behaviourally identical to a
:class:`~repro.agents.strategies.TruthfulAgent` (differentially tested),
which is what makes the zero-fault scenario bit-identical to the plain
mechanism run.

:func:`build_agents` performs the deterministic activation draws
(probability, target selection) from a seed-derived stream and returns
the agent population plus the record of what was actually injected.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

import numpy as np

from repro.agents.base import ProcessorAgent
from repro.agents.strategies import TruthfulAgent
from repro.faults.spec import FaultSpec, ScenarioSpec
from repro.protocol.messages import GrievanceKind, PaymentProof

__all__ = ["FaultyAgent", "activate_faults", "build_agents", "fault_records"]


class FaultyAgent(ProcessorAgent):
    """A processor executing the active faults at its position.

    Parameters
    ----------
    faults:
        The :class:`~repro.faults.spec.FaultSpec` list active for this
        run at this index (one per kind; later specs of the same kind
        override earlier ones).
    z_next:
        The public link time to the successor (needed only by
        ``misreport_z``; ``None`` at the terminal).
    """

    def __init__(
        self,
        index: int,
        true_rate: float,
        faults: Sequence[FaultSpec] = (),
        *,
        z_next: float | None = None,
    ) -> None:
        super().__init__(index, true_rate)
        self.faults: dict[str, FaultSpec] = {f.kind: f for f in faults}
        self.z_next = None if z_next is None else float(z_next)

    @property
    def strategy_name(self) -> str:  # type: ignore[override]
        if not self.faults:
            return "truthful"
        return "fault:" + "+".join(sorted(self.faults))

    def _param(self, kind: str) -> float:
        value = self.faults[kind].effective_param
        assert value is not None, f"fault {kind!r} requires a parameter"
        return float(value)

    def _crash_phase(self) -> int | None:
        spec = self.faults.get("crash")
        if spec is None:
            return None
        return int(spec.effective_param or 3)

    # -- Phase I -------------------------------------------------------

    def choose_bid(self) -> float:
        if "misbid" in self.faults:
            return self._param("misbid") * self.true_rate
        return super().choose_bid()

    def phase1_w_bar(self, honest_w_bar: float) -> float:
        if "miscompute" in self.faults:
            return honest_w_bar * self._param("miscompute")
        if "misreport_z" in self.faults and self.z_next is not None:
            # Recompute the recurrence with a misreported successor link:
            # recover tail = w_bar_{i+1} + z from honest = tail/(b+tail)*b,
            # scale the z component, and re-fold.  The successor's signed
            # bid pins the true tail, so the Phase II identity check fails.
            b = self.choose_bid()
            if honest_w_bar < b:
                tail = honest_w_bar * b / (b - honest_w_bar)
                tail_forged = tail + (self._param("misreport_z") - 1.0) * self.z_next
                return tail_forged / (b + tail_forged) * b
        return super().phase1_w_bar(honest_w_bar)

    def phase1_second_bid(self, reported_w_bar: float) -> float | None:
        if "contradict" in self.faults:
            return reported_w_bar * self._param("contradict")
        return super().phase1_second_bid(reported_w_bar)

    def phase1_sends_malformed(self) -> bool:
        if "msg_drop" in self.faults or "sig_corrupt" in self.faults:
            return True
        if self._crash_phase() == 1:
            return True
        return super().phase1_sends_malformed()

    # -- Phase II ------------------------------------------------------

    def phase2_validates(self) -> bool:
        if "no_validate" in self.faults:
            return False
        return super().phase2_validates()

    def phase2_d_next(self, honest_d_next: float) -> float:
        if "relay_tamper" in self.faults:
            return honest_d_next * self._param("relay_tamper")
        return super().phase2_d_next(honest_d_next)

    def phase2_echo_bid(self, successor_w_bar: float) -> float:
        if "echo_tamper" in self.faults:
            return successor_w_bar * self._param("echo_tamper")
        return super().phase2_echo_bid(successor_w_bar)

    # -- Phase III -----------------------------------------------------

    def choose_execution_rate(self) -> float:
        if "slow" in self.faults:
            return self._param("slow") * self.true_rate
        return super().choose_execution_rate()

    def choose_retention(self, assigned: float, received: float, expected_forward: float) -> float:
        if self._crash_phase() == 3:
            return 0.0
        if "shed" in self.faults:
            honest = max(received - expected_forward, 0.0)
            return (1.0 - self._param("shed")) * min(assigned, honest)
        return super().choose_retention(assigned, received, expected_forward)

    def reports_overload(self) -> bool:
        if "silent_victim" in self.faults:
            return False
        return super().reports_overload()

    def phase3_forward_delay(self) -> float:
        if "msg_delay" in self.faults:
            return self._param("msg_delay")
        return super().phase3_forward_delay()

    def fabricates_accusation(self) -> GrievanceKind | None:
        if "false_accuse" in self.faults:
            return GrievanceKind.OVERLOAD
        return super().fabricates_accusation()

    # -- Phase IV ------------------------------------------------------

    def phase4_bill(self, correct_payment: float) -> float:
        if self._crash_phase() == 4:
            return 0.0
        if "overcharge" in self.faults:
            return correct_payment + self._param("overcharge")
        return super().phase4_bill(correct_payment)

    def phase4_proof(self, proof: PaymentProof) -> PaymentProof:
        if "meter_tamper" in self.faults:
            # Rewrite the reading inside the root-signed meter message;
            # the stale signature no longer covers the payload, so the
            # audit's component verification rejects the proof.
            payload = dict(proof.meter.payload)
            payload["actual_rate"] = float(payload["actual_rate"]) * self._param("meter_tamper")
            proof = dataclasses.replace(
                proof, meter=dataclasses.replace(proof.meter, payload=payload)
            )
        if "lambda_tamper" in self.faults:
            # Claim more blocks than the device issued; range containment
            # fails Lambda verification during the audit recomputation.
            cert = proof.certificate
            proof = dataclasses.replace(
                proof,
                certificate=dataclasses.replace(
                    cert, n_blocks=cert.n_blocks + int(self._param("lambda_tamper"))
                ),
            )
        return super().phase4_proof(proof)


def activate_faults(
    scenario: ScenarioSpec, rng: np.random.Generator, m: int | None = None
) -> list[tuple[FaultSpec, int]]:
    """Draw this run's fault activations from the activation stream.

    ``rng`` is the scenario's *activation stream* for one run — every
    fault consumes exactly one Bernoulli draw (plus one target draw when
    ``target is None``), so the activation pattern is a pure function of
    the stream's seed, independent of worker layout.

    Returns ``(spec, resolved_target)`` pairs in spec order.
    """
    m = scenario.m if m is None else m
    chosen: list[tuple[FaultSpec, int]] = []
    for spec in scenario.faults:
        if float(rng.random()) >= spec.probability:
            continue
        target = spec.target
        if target is None:
            hi = m - 1 if (spec.info.needs_successor and m > 1) else m
            target = int(rng.integers(1, hi + 1))
        chosen.append((spec, target))
    return chosen


def fault_records(chosen: Sequence[tuple[FaultSpec, int]]) -> list[dict[str, Any]]:
    """JSON-ready records of activated faults (kind, target, parameter,
    expectation) — the payload of ``fault_injected`` trace events and the
    runner's ``active`` summary field."""
    return [
        {
            "kind": spec.kind,
            "target": target,
            "param": spec.effective_param,
            "probability": spec.probability,
            "expected": spec.info.expected,
            "theorem": spec.info.theorem,
        }
        for spec, target in chosen
    ]


def build_agents(
    scenario: ScenarioSpec,
    rng: np.random.Generator,
    true_rates: Sequence[float],
    link_rates: np.ndarray,
) -> tuple[list[ProcessorAgent], list[dict[str, Any]]]:
    """Draw fault activations and build the agent population.

    The activation draws come from :func:`activate_faults` (one stream
    position per fault, regardless of outcome).  Returns ``(agents,
    active)`` where ``active`` records each injected fault in spec order.
    """
    m = len(true_rates)
    chosen = activate_faults(scenario, rng, m)
    per_target: dict[int, list[FaultSpec]] = {}
    for spec, target in chosen:
        per_target.setdefault(target, []).append(spec)
    active = fault_records(chosen)
    agents: list[ProcessorAgent] = []
    for i in range(1, m + 1):
        t = float(true_rates[i - 1])
        faults = per_target.get(i)
        if faults:
            z_next = float(link_rates[i]) if i < m else None
            agents.append(FaultyAgent(i, t, faults, z_next=z_next))
        else:
            agents.append(TruthfulAgent(i, t))
    return agents, active
