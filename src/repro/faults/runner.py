"""Deterministic parallel scenario runner.

Mirrors :mod:`repro.mechanism.population`: every run of a scenario
derives all randomness from run *identity* (``task_seed`` over the
scenario name, the run index and the base seed), per-run traces carry
only simulated time and logical ids, and
:func:`~repro.obs.tracer.merge_traces` rebases ids in submission order —
so the merged trace is byte-identical at any ``--jobs`` count.

Each run executes the faulty population *and* (when any fault activated)
a truthful baseline on the same network, then classifies every deviator:

- ``detected`` — a grievance verdict or Phase IV audit fined it;
- ``dominated`` — its utility does not exceed the truthful baseline.

A run is ``ok`` when every deviator is detected-and-fined or dominated
and no honest processor was fined — the empirical content of Theorems
5.1-5.4.  Coalitions get the X8 treatment instead: DLS-LBL is not
group-strategyproof, so a multi-deviator run is alternatively ``ok``
when the coalition is *unstable* — its joint surplus stays below the
reporting reward ``F`` a betraying member would collect.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.runner import task_seed
from repro.faults.catalog import get_scenario
from repro.faults.injector import (
    FaultyAgent,
    activate_faults,
    build_agents,
    fault_records,
)
from repro.faults.spec import ScenarioSpec
from repro.obs.metrics import collecting, get_registry, merge_snapshots
from repro.obs.tracer import TraceEvent, Tracer, events_to_jsonl, merge_traces

__all__ = ["ScenarioResult", "run_scenario", "zero_fault_differential"]

#: Utility-dominance slack, relative to the truthful baseline's scale.
GAIN_TOL = 1e-9

#: Conservation slack for the resilient runtime's load accounting.
_LOAD_TOL = 1e-9


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of :func:`run_scenario`.

    Attributes
    ----------
    scenario:
        The resolved spec.
    runs:
        One verdict dict per run, in index order.
    events:
        Merged trace events (``fault_injected``/``fault_detected`` plus
        the usual mechanism events); empty unless tracing was requested.
    metrics:
        Merged metrics snapshot (faulty runs and truthful baselines both
        count toward ``mechanism.runs``).
    """

    scenario: ScenarioSpec
    runs: list[dict[str, Any]]
    events: list[TraceEvent] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        return all(r["ok"] for r in self.runs)


def _fines_against(outcome, proc: int) -> float:
    """Total grievance + audit fines levied on ``proc`` in ``outcome``.

    The tree mechanism models the tamper-proof level (no grievances or
    audits), so both collections default to empty — but root-side and
    meter-side fines still appear in its ledger, which is covered below.
    """
    total = sum(
        v.fine_amount
        for v in getattr(outcome, "adjudications", ())
        if v.fined == proc and v.fine_amount > 0
    )
    total += sum(
        a.fine for a in getattr(outcome, "audits", ()) if a.proc == proc and a.fine > 0
    )
    # Star-topology fines that bypass the grievance court: the root
    # detects contradictions itself and the meter detects abandonment.
    total += sum(
        e.amount
        for e in outcome.ledger.entries_for(proc)
        if e.debtor == proc and ("root-detected" in e.memo or "meter-detected" in e.memo)
    )
    return float(total)


def _preorder_rates(tree) -> list[float]:
    """Per-node ``w`` in preorder (the tree mechanism's node indexing)."""
    rates: list[float] = []

    def visit(node) -> None:
        rates.append(float(node.w))
        for child in node.children:
            visit(child)

    visit(tree.root)
    return rates


def _build_mechanism(scenario, network, agents, rng, tracer, use_batch=False):
    """Construct the scenario's mechanism for its topology.

    ``use_batch=True`` swaps the chain/star mechanisms for the batch
    engine's lane subclasses — same protocol code, bitwise-equal output,
    crypto-free stand-ins.  Trees have no lane engine yet; that genuine
    fallback is counted in ``mechanism.scalar_fallbacks``.
    """
    if scenario.topology == "linear":
        if use_batch:
            from repro.mechanism.batch_run import LaneChainMechanism as chain_cls
        else:
            from repro.mechanism.dls_lbl import DLSLBLMechanism as chain_cls

        return chain_cls(
            network.z,
            float(network.w[0]),
            agents,
            audit_probability=scenario.audit_probability,
            rng=rng,
            tracer=tracer,
        )
    if scenario.topology == "star":
        if use_batch:
            from repro.mechanism.batch_run import LaneStarMechanism as star_cls
        else:
            from repro.mechanism.star_mechanism import StarMechanism as star_cls

        return star_cls(
            network.z,
            float(network.w[0]),
            agents,
            audit_probability=scenario.audit_probability,
            rng=rng,
            tracer=tracer,
        )
    from repro.mechanism.tree_mechanism import TreeMechanism

    if use_batch:
        get_registry().inc("mechanism.scalar_fallbacks")
    return TreeMechanism(network, agents, tracer=tracer)


def _draw_network(scenario, rng):
    """The run's random network and the strategic agents' true rates."""
    if scenario.topology == "linear":
        from repro.network.generators import random_linear_network

        network = random_linear_network(scenario.m, rng)
        return network, [float(x) for x in network.w[1:]], network.z
    if scenario.topology == "star":
        from repro.network.generators import random_star_network

        network = random_star_network(scenario.m, rng)
        # No relaying on the star: misreport_z is unsupported, so the
        # injector's z_next values are never consulted.
        return network, [float(x) for x in network.w[1:]], np.zeros(scenario.m + 1)
    from repro.network.generators import random_tree_network

    tree = random_tree_network(scenario.m + 1, rng)
    return tree, _preorder_rates(tree)[1:], np.zeros(scenario.m + 1)


def _run_scenario_once(
    scenario: ScenarioSpec,
    run_index: int,
    seed: int,
    trace: bool,
    use_batch: bool = False,
) -> tuple[dict[str, Any], list[TraceEvent], dict[str, Any]]:
    """Execute one scenario run.  Module-level so it pickles into pool
    workers; everything returned is picklable."""
    from repro.agents import TruthfulAgent

    if scenario.layer in ("infrastructure", "byzantine"):
        return _run_infrastructure_once(scenario, run_index, seed, trace, use_batch)

    run_seed = task_seed(f"faults/{scenario.name}/net/{run_index}", seed)
    rng = np.random.default_rng(run_seed)
    network, true_rates, z_for_agents = _draw_network(scenario, rng)

    act_rng = np.random.default_rng(
        task_seed(f"faults/{scenario.name}/activate/{run_index}", seed)
    )
    agents, active = build_agents(scenario, act_rng, true_rates, z_for_agents)

    tracer = Tracer() if trace else None
    if tracer is not None:
        for fault in active:
            tracer.event(
                "fault_injected",
                run=run_index,
                fault_kind=fault["kind"],
                target=fault["target"],
                param=fault["param"],
                probability=fault["probability"],
                expected=fault["expected"],
                theorem=fault["theorem"],
            )

    with collecting() as registry:
        mech = _build_mechanism(scenario, network, agents, rng, tracer, use_batch)
        outcome = mech.run()

        baseline = None
        if active:
            baseline_rng = np.random.default_rng(
                task_seed(f"faults/{scenario.name}/baseline/{run_index}", seed)
            )
            baseline_mech = _build_mechanism(
                scenario,
                network,
                [TruthfulAgent(i, t) for i, t in enumerate(true_rates, start=1)],
                baseline_rng,
                None,
                use_batch,
            )
            baseline = baseline_mech.run()
        snapshot = registry.snapshot()

    deviator_targets = sorted({fault["target"] for fault in active})
    deviators: list[dict[str, Any]] = []
    joint_gain = 0.0
    all_individually_ok = True
    for target in deviator_targets:
        kinds = [f["kind"] for f in active if f["target"] == target]
        utility = outcome.reports[target].utility
        truthful_utility = baseline.reports[target].utility if baseline is not None else 0.0
        gain = utility - truthful_utility
        joint_gain += gain
        fines = _fines_against(outcome, target)
        detected = fines > 0
        tol = GAIN_TOL * max(1.0, abs(truthful_utility))
        dominated = gain <= tol
        ok = detected or dominated
        all_individually_ok = all_individually_ok and ok
        deviators.append(
            {
                "target": target,
                "kinds": kinds,
                "utility": utility,
                "truthful_utility": truthful_utility,
                "gain": gain,
                "detected": detected,
                "fines": fines,
                "dominated": dominated,
                "ok": ok,
            }
        )
        if tracer is not None and detected:
            tracer.event(
                "fault_detected",
                run=run_index,
                target=target,
                kinds=kinds,
                fines=fines,
            )

    honest_fined = any(
        _fines_against(outcome, i) > 0
        for i in range(1, scenario.m + 1)
        if i not in deviator_targets
    )
    # Coalitions can have positive surplus (DLS-LBL is not
    # group-strategyproof); the paper's guarantee — measured by X8 — is
    # instability: the betrayal reward F exceeds any coalition surplus.
    coalition_unstable = len(deviators) > 1 and joint_gain < mech.fine
    ok = (all_individually_ok or coalition_unstable) and not honest_fined

    summary = {
        "scenario": scenario.name,
        "run": run_index,
        "seed": run_seed,
        "m": scenario.m,
        "topology": scenario.topology,
        "completed": getattr(outcome, "completed", True),
        "aborted_phase": getattr(outcome, "aborted_phase", None),
        "makespan": outcome.makespan,
        "fine": mech.fine,
        "active": active,
        "deviators": deviators,
        "joint_gain": joint_gain,
        "coalition_unstable": coalition_unstable,
        "honest_fined": honest_fined,
        "ok": ok,
    }
    events = tracer.events if tracer is not None else []
    return summary, events, snapshot


#: Acceptable runtime verdicts per expected verdict: a fault expected to
#: be tolerated may legitimately degrade the run when its magnitude
#: exceeds the retry budget (e.g. more drops than attempts); a fault
#: expected to be detected must actually be detected — except when the
#: lie was ``pre-empted`` (the liar crashed before the lying moment, or
#: its would-be victim had already failed), which composition with crash
#: faults makes legitimately reachable.  ``tolerated-degraded`` is the
#: Byzantine suppression expectation: unattributable by design, so any
#: absorbed/degraded outcome is in-contract but a ``detected`` claim
#: would be a checker bug.
_VERDICT_OK = {
    "tolerated": {"tolerated", "degraded"},
    "degraded": {"degraded", "tolerated"},
    "detected": {"detected", "pre-empted"},
    "tolerated-degraded": {"tolerated", "degraded", "pre-empted"},
}


def _run_infrastructure_once(
    scenario: ScenarioSpec,
    run_index: int,
    seed: int,
    trace: bool,
    use_batch: bool = False,
) -> tuple[dict[str, Any], list[TraceEvent], dict[str, Any]]:
    """One run of an infrastructure/byzantine scenario through the
    resilient runtime.

    Instead of deviator utilities, the verdict checks are the runtime's
    recovery guarantees: the session completes, computed load sums to W,
    the ledger balances, honest survivors are never fined (detected
    Byzantine liars are the only live processors allowed debit entries,
    and every one of them must carry a fine), and every injected fault
    lands on an acceptable tolerated/degraded/detected/pre-empted
    verdict (never ``failed``).
    """
    from repro.network.generators import random_linear_network
    from repro.runtime.session import run_resilient

    run_seed = task_seed(f"faults/{scenario.name}/net/{run_index}", seed)
    rng = np.random.default_rng(run_seed)
    network = random_linear_network(scenario.m, rng)

    act_rng = np.random.default_rng(
        task_seed(f"faults/{scenario.name}/activate/{run_index}", seed)
    )
    chosen = activate_faults(scenario, act_rng)
    active = fault_records(chosen)

    tracer = Tracer() if trace else None
    if tracer is not None:
        for fault in active:
            tracer.event(
                "fault_injected",
                run=run_index,
                fault_kind=fault["kind"],
                target=fault["target"],
                param=fault["param"],
                probability=fault["probability"],
                expected=fault["expected"],
                theorem=fault["theorem"],
            )

    with collecting() as registry:
        if use_batch:
            # The resilient runtime is event-driven, not array-shaped;
            # a genuine scalar fallback worth surfacing in metrics.
            registry.inc("mechanism.scalar_fallbacks")
        outcome = run_resilient(
            network.w,
            network.z,
            faults=[
                {"kind": spec.kind, "target": target, "param": spec.effective_param}
                for spec, target in chosen
            ],
            seed=run_seed,
            tracer=tracer,
        )
        snapshot = registry.snapshot()

    conserved = abs(outcome.total_computed - 1.0) <= _LOAD_TOL
    ledger_balanced = abs(outcome.ledger.total_balance()) <= _LOAD_TOL
    liars = set(outcome.liars)
    survivors_clean = not any(
        entry.debtor == i
        for i in range(1, scenario.m + 1)
        if i not in outcome.dead and i not in liars
        for entry in outcome.ledger.entries_for(i)
    )
    # Every convicted liar must actually carry an adjudication fine —
    # "correct fines on detected liars" is half the Byzantine contract.
    liars_fined = all(outcome.fines.get(i, 0.0) > 0 for i in liars)
    checks = []
    for fault, verdict in zip(active, outcome.verdicts):
        verdict_ok = verdict["verdict"] in _VERDICT_OK.get(fault["expected"], set())
        checks.append({**verdict, "expected": fault["expected"], "ok": verdict_ok})
        if tracer is not None and verdict["verdict"] == "detected":
            tracer.event(
                "fault_detected",
                run=run_index,
                target=verdict["target"],
                kinds=[verdict["kind"]],
                fines=outcome.fines.get(verdict["target"], 0.0),
            )
    ok = (
        outcome.completed
        and conserved
        and ledger_balanced
        and survivors_clean
        and liars_fined
        and all(c["ok"] for c in checks)
    )

    summary = {
        "scenario": scenario.name,
        "run": run_index,
        "seed": run_seed,
        "m": scenario.m,
        "topology": scenario.topology,
        "completed": outcome.completed,
        "aborted_phase": None,
        "makespan": outcome.makespan,
        "baseline_makespan": outcome.baseline_makespan,
        "makespan_penalty": outcome.makespan_penalty,
        "active": active,
        "verdicts": checks,
        "dead": list(outcome.dead),
        "unresponsive": list(outcome.unresponsive),
        "retries": outcome.retries,
        "crashes": outcome.crashes,
        "reallocations": outcome.reallocations,
        "rejections": outcome.rejections,
        "forfeits": {str(k): v for k, v in outcome.forfeits.items()},
        "total_computed": outcome.total_computed,
        "conserved": conserved,
        "ledger_balanced": ledger_balanced,
        "survivors_clean": survivors_clean,
        "liars": list(outcome.liars),
        "excluded": list(outcome.excluded),
        "fines": {str(k): v for k, v in sorted(outcome.fines.items())},
        "liars_fined": liars_fined,
        # A fine against a live processor that was *not* convicted of a
        # Byzantine lie would be a bug (crashed processors legitimately
        # forfeit; convicted liars legitimately pay F).
        "honest_fined": not survivors_clean,
        "ok": ok,
    }
    events = tracer.events if tracer is not None else []
    return summary, events, snapshot


def run_scenario(
    scenario: ScenarioSpec | str,
    *,
    seed: int = 0,
    jobs: int = 1,
    trace: bool = False,
    runs: int | None = None,
    use_batch: bool = False,
) -> ScenarioResult:
    """Run every instance of ``scenario`` (a spec or a catalog name).

    Run ``i`` derives its network, activation and audit randomness from
    ``task_seed`` over ``(scenario.name, i, seed)``, so results and the
    merged trace are functions of ``(scenario, seed)`` only — ``jobs``
    changes wall-clock, never output.

    ``use_batch=True`` executes chain/star runs on the batch engine's
    lane mechanisms — bitwise-equal summaries, counters and trace bytes.
    Tree and infrastructure scenarios have no batched analogue; they run
    scalar and count each fallback in ``mechanism.scalar_fallbacks``.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    count = runs if runs is not None else scenario.runs
    if count < 1:
        raise ValueError("runs must be at least 1")
    tasks = [(scenario, i, seed, trace, use_batch) for i in range(count)]
    if jobs <= 1:
        outcomes = [_run_scenario_once(*task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_scenario_once, *task) for task in tasks]
            # Submission order, not completion order — determinism.
            outcomes = [future.result() for future in futures]
        # Worker runs merged only into the worker-local registries;
        # bring their metric deltas home (population.py does the same).
        registry = get_registry()
        for _summary, _events, snapshot in outcomes:
            registry.merge(snapshot)
    summaries = [summary for summary, _events, _snapshot in outcomes]
    events = merge_traces([events for _summary, events, _snapshot in outcomes])
    metrics = merge_snapshots([snapshot for _summary, _events, snapshot in outcomes])
    return ScenarioResult(scenario=scenario, runs=summaries, events=events, metrics=metrics)


def zero_fault_differential(
    m: int = 4,
    *,
    seed: int = 0,
    audit_probability: float = 1.0,
) -> dict[str, Any]:
    """Differential check: a :class:`FaultyAgent` population with *no*
    active faults must be bit-identical to the honest path.

    Runs the mechanism twice on the same network and seed — once with
    empty-fault :class:`FaultyAgent`\\ s, once with plain
    ``TruthfulAgent``\\ s — and compares every outcome array, the agent
    reports, the ledger entries, and the full JSONL traces byte for
    byte.
    """
    from repro.agents import TruthfulAgent
    from repro.mechanism.dls_lbl import DLSLBLMechanism
    from repro.network.generators import random_linear_network

    run_seed = task_seed("faults/differential", seed)
    network = random_linear_network(m, np.random.default_rng(run_seed))
    true_rates = [float(x) for x in network.w[1:]]

    def execute(agents):
        tracer = Tracer()
        mech = DLSLBLMechanism(
            network.z,
            float(network.w[0]),
            agents,
            audit_probability=audit_probability,
            rng=np.random.default_rng(run_seed + 1),
            tracer=tracer,
        )
        return mech.run(), tracer

    faulty_outcome, faulty_tracer = execute(
        [FaultyAgent(i, t) for i, t in enumerate(true_rates, start=1)]
    )
    honest_outcome, honest_tracer = execute(
        [TruthfulAgent(i, t) for i, t in enumerate(true_rates, start=1)]
    )

    arrays_equal = all(
        np.array_equal(getattr(faulty_outcome, name), getattr(honest_outcome, name))
        for name in ("bids", "w_bar", "assigned", "computed", "actual_rates")
    )
    reports_equal = faulty_outcome.reports == honest_outcome.reports
    ledger_equal = list(faulty_outcome.ledger.entries) == list(honest_outcome.ledger.entries)
    traces_equal = events_to_jsonl(faulty_tracer.events) == events_to_jsonl(honest_tracer.events)
    return {
        "arrays_equal": arrays_equal,
        "reports_equal": reports_equal,
        "ledger_equal": ledger_equal,
        "traces_equal": traces_equal,
        "identical": arrays_equal and reports_equal and ledger_equal and traces_equal,
    }
