"""DLS-T: a strategyproof payment rule for tree networks.

The authors' companion paper [9] ("A strategyproof mechanism for
scheduling divisible loads in tree networks", IPDPS 2006) covers the
tree case; the present paper cites it as the sibling of DLS-LBL.  This
module provides that baseline at the *tamper-proof* level of the model
hierarchy (Section 3): agents control their reported rate and their
execution speed, while the relay protocol itself is taken as faithful —
the autonomous-node verification machinery generalizes exactly as in
DLS-LBL (signed per-edge evidence, Λ certificates, grievances) and is
not re-implemented here.

Payments mirror eq. 4.4–4.11 verbatim, with the chain's "predecessor"
role played by the node's *parent*: for a node ``v`` with parent ``p``
over link ``z_v``,

.. math::

    B_v = w_p - \\bar w_p\\big(\\alpha((w_p, \\bar w_v)), (w_p, \\hat w_v)\\big)

— the two-party system of the parent's bid and ``v``'s collapsed
subtree, evaluated at ``v``'s adjusted equivalent time
:math:`\\hat w_v` (the subtree equivalent recomputed at ``v``'s metered
rate when it ran slower than bid, unchanged otherwise — eqs. 4.10/4.11
with the subtree in place of the chain suffix).  The strategyproofness
argument is Lemma 5.3's unchanged: the evaluated pair time is a max of a
branch increasing in the bid and a branch decreasing in it, crossing at
the truth.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.agents.base import ProcessorAgent
from repro.dlt.star import solve_star
from repro.exceptions import InvalidNetworkError
from repro.mechanism.dls_lbl import AgentReport
from repro.mechanism.ledger import PaymentLedger
from repro.mechanism.payments import bonus as pair_bonus
from repro.mechanism.payments import recommended_fine
from repro.network.topology import StarNetwork, TreeNetwork, TreeNode
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer

__all__ = ["TreeMechanism", "TreeOutcome", "TreeNodeInfo"]


@dataclass
class TreeNodeInfo:
    """Flattened view of one tree node (preorder id 0 is the root)."""

    node_id: int
    parent: int | None
    link: float | None
    children: list[int] = field(default_factory=list)
    label: str | None = None


def _flatten(tree: TreeNetwork) -> list[TreeNodeInfo]:
    infos: list[TreeNodeInfo] = []

    def visit(node: TreeNode, parent: int | None) -> int:
        node_id = len(infos)
        infos.append(
            TreeNodeInfo(node_id=node_id, parent=parent, link=node.link, label=node.label)
        )
        for child in node.children:
            child_id = visit(child, node_id)
            infos[node_id].children.append(child_id)
        return node_id

    visit(tree.root, None)
    return infos


@dataclass
class TreeOutcome:
    """Everything a tree-mechanism run produced (preorder indexing)."""

    bids: np.ndarray
    w_bar: np.ndarray  # subtree equivalent times from the bids
    assigned: np.ndarray
    computed: np.ndarray
    actual_rates: np.ndarray
    ledger: PaymentLedger
    reports: dict[int, AgentReport]
    makespan: float

    def utility(self, node_id: int) -> float:
        if node_id == 0:
            return 0.0
        return self.reports[node_id].utility


class TreeMechanism:
    """One configured instance of the tree mechanism.

    Parameters
    ----------
    tree:
        The network *shape*: node links are taken from it; node ``w``
        values are ignored for strategic nodes (their bids rule) and used
        as the obedient root's rate.
    agents:
        Strategic agents for every non-root node, keyed by preorder id
        (``agent.index`` must equal the node id).
    """

    def __init__(
        self,
        tree: TreeNetwork,
        agents: Sequence[ProcessorAgent],
        *,
        fine: float | None = None,
        total_load: float = 1.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.tree = tree
        self.nodes = _flatten(tree)
        size = len(self.nodes)
        got = sorted(a.index for a in agents)
        if got != list(range(1, size)):
            raise InvalidNetworkError(
                f"agents must cover preorder node ids 1..{size - 1}, got {got}"
            )
        self.agents = {a.index: a for a in agents}
        self.root_rate = float(tree.root.w)
        self.total_load = float(total_load)
        true_rates = np.array([self.root_rate] + [a.true_rate for a in agents])
        self.fine = (
            float(fine)
            if fine is not None
            else recommended_fine(
                true_rates,
                total_load=self.total_load,
                max_overcharge=10.0 * true_rates.max(),
            )
        )
        self.tracer = tracer

    def _span(self, kind: str, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(kind, **attrs)

    # -- core computations -------------------------------------------------

    def _subtree_equivalent(self, node_id: int, rates: np.ndarray, w_bar: np.ndarray) -> float:
        """Equivalent time of ``node_id``'s subtree given per-node rates
        and already-computed child equivalents."""
        info = self.nodes[node_id]
        if not info.children:
            return float(rates[node_id])
        w = np.array([rates[node_id]] + [w_bar[c] for c in info.children])
        z = np.array([self.nodes[c].link for c in info.children], dtype=np.float64)
        return solve_star(StarNetwork(w, z)).makespan

    def _collapse_all(self, rates: np.ndarray) -> np.ndarray:
        """Bottom-up subtree equivalents for every node (postorder)."""
        size = len(self.nodes)
        w_bar = np.zeros(size)
        for node_id in reversed(range(size)):  # preorder reversed = valid postorder here
            w_bar[node_id] = self._subtree_equivalent(node_id, rates, w_bar)
        return w_bar

    def _allocate(self, rates: np.ndarray, w_bar: np.ndarray) -> np.ndarray:
        """Top-down unrolling of the per-node fractions."""
        size = len(self.nodes)
        alpha = np.zeros(size)

        def unroll(node_id: int, load: float) -> None:
            info = self.nodes[node_id]
            if not info.children:
                alpha[node_id] = load
                return
            w = np.array([rates[node_id]] + [w_bar[c] for c in info.children])
            z = np.array([self.nodes[c].link for c in info.children], dtype=np.float64)
            sched = solve_star(StarNetwork(w, z))
            alpha[node_id] = load * float(sched.alpha[0])
            for slot, child in enumerate(info.children, start=1):
                unroll(child, load * float(sched.alpha[slot]))

        unroll(0, self.total_load)
        return alpha

    def run(self) -> TreeOutcome:
        """Collect bids, schedule, meter, and pay.

        When a tracer is attached the run is wrapped in a ``run`` span
        (``topology="tree"``) and every ledger movement emits a
        ``ledger_transfer`` event.  Tree runs count under
        ``mechanism.tree_runs`` to keep the chain-mechanism run counter
        untouched.
        """
        registry = get_registry()
        registry.inc("mechanism.tree_runs")
        with registry.timer("mechanism.tree_run"), self._span(
            "run",
            topology="tree",
            n=len(self.nodes) - 1,
            fine=self.fine,
            total_load=self.total_load,
        ) as run_span:
            outcome = self._run_protocol()
        if run_span is not None:
            run_span.set(completed=True, makespan=outcome.makespan)
        return outcome

    def _run_protocol(self) -> TreeOutcome:
        size = len(self.nodes)
        ledger = PaymentLedger(tracer=self.tracer)

        bids = np.zeros(size)
        bids[0] = self.root_rate
        for node_id, agent in self.agents.items():
            bids[node_id] = agent.choose_bid()

        w_bar = self._collapse_all(bids)
        alpha = self._allocate(bids, w_bar)

        actual_rates = np.zeros(size)
        actual_rates[0] = self.root_rate
        for node_id, agent in self.agents.items():
            actual_rates[node_id] = max(agent.choose_execution_rate(), agent.true_rate)

        # Adjusted equivalents (eqs. 4.10/4.11 on subtrees): recompute the
        # node's local collapse at its actual rate when it ran slower than
        # bid; unchanged when it ran at least as fast.
        w_hat = w_bar.copy()
        for node_id in range(1, size):
            if actual_rates[node_id] >= bids[node_id]:
                rates_eval = bids.copy()
                rates_eval[node_id] = actual_rates[node_id]
                w_hat[node_id] = self._subtree_equivalent(node_id, rates_eval, w_bar)

        ledger.pay(0, float(alpha[0]) * self.root_rate, "root reimbursement")
        correct_q = np.zeros(size)
        for node_id in range(1, size):
            info = self.nodes[node_id]
            assert info.parent is not None and info.link is not None
            b = pair_bonus(
                predecessor_bid=float(bids[info.parent]),
                z_link=float(info.link),
                w_bar=float(w_bar[node_id]),
                w_hat=float(w_hat[node_id]),
            )
            compensation = float(alpha[node_id]) * float(actual_rates[node_id])
            correct_q[node_id] = compensation + b
            if correct_q[node_id] >= 0:
                ledger.pay(node_id, correct_q[node_id], "payment")
            else:
                ledger.fine(node_id, -correct_q[node_id], "payment (negative)")

        reports: dict[int, AgentReport] = {}
        for node_id, agent in self.agents.items():
            valuation = -float(alpha[node_id]) * float(actual_rates[node_id])
            reports[node_id] = AgentReport(
                index=node_id,
                strategy=agent.strategy_name,
                true_rate=agent.true_rate,
                bid=float(bids[node_id]),
                w_bar=float(w_bar[node_id]),
                actual_rate=float(actual_rates[node_id]),
                assigned=float(alpha[node_id]),
                computed=float(alpha[node_id]),
                valuation=valuation,
                payment_billed=float(correct_q[node_id]),
                payment_correct=float(correct_q[node_id]),
                fines=0.0,
                rewards=0.0,
                utility=float(valuation + ledger.balance(node_id)),
            )

        # The realized makespan: recompute the collapse at actual rates
        # but with the bid-derived allocation — conservatively, the max of
        # per-node finishing estimates is the root equivalent at actual
        # rates when everyone is truthful.
        makespan = float(self._collapse_all(actual_rates)[0]) * self.total_load

        return TreeOutcome(
            bids=bids,
            w_bar=w_bar,
            assigned=alpha,
            computed=alpha.copy(),
            actual_rates=actual_rates,
            ledger=ledger,
            reports=reports,
            makespan=makespan,
        )
