"""DLS-LIL: the interior-origination mechanism (paper Section 6 future
work, built as an extension).

The paper's DLS-LBL handles linear networks whose root is a *terminal*
processor; its conclusion announces mechanisms "for different network
architectures" as future work, the interior-rooted chain being the one
its own Section 2 defines.  DLS-LIL realizes it:

- the obedient root ``P_r`` sits mid-chain between a left and a right
  arm; each arm runs Phase I bottom-up exactly as in DLS-LBL;
- the root solves the two-child *star* over the arms' equivalent bids
  (the Fig. 3 reduction applied to whole arms) to fix its own share and
  the per-arm shares, trying both one-port service orders;
- each arm head verifies the root's split (recomputing the star from the
  signed bids) instead of the eq. 2.7 identity; all deeper processors
  run the standard ``G`` checks with arm-relative sender/attestor roles;
- Phase III distributes over the
  :func:`~repro.sim.interior_sim.simulate_interior_chain` model; Λ
  certificates, overload grievances and audits work per-arm;
- Phase IV reuses the DLS-LBL payment structure verbatim with arm-local
  predecessors (the head's predecessor is the root).

Why the payments carry over: an agent's utility at full speed is
``V + Q = B`` — the bonus — and the bonus (eq. 4.9) depends only on the
agent's pairwise reduction with its predecessor, *not* on the allocation
rule upstream.  Changing how the root splits load between arms therefore
cannot create an incentive to misreport; the empirical strategyproofness
sweeps in ``tests/integration/test_dls_lil.py`` confirm it.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.agents.base import ProcessorAgent
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signing import SignedMessage, sign
from repro.dlt.star import solve_star
from repro.exceptions import InvalidNetworkError, ProtocolViolation
from repro.mechanism.audit import AuditRecord, Auditor, recompute_payment_from_proof
from repro.mechanism.dls_lbl import AgentReport
from repro.mechanism.ledger import PaymentLedger
from repro.mechanism.payments import payment_breakdown, recommended_fine
from repro.network.topology import StarNetwork
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer
from repro.protocol.grievance import Adjudication, GrievanceCourt
from repro.protocol.lambda_device import LambdaDevice, LoadCertificate
from repro.protocol.messages import (
    GMessage,
    Grievance,
    GrievanceKind,
    PaymentProof,
    bid_payload,
    value_payload,
)
from repro.protocol.meter import TamperProofMeter
from repro.protocol.verification import verify_g_message
from repro.sim.interior_sim import InteriorChainResult, simulate_interior_chain

__all__ = ["DLSLILMechanism", "InteriorOutcome", "verify_split"]

_LOAD_TOL = 1e-7


@dataclass
class _Arm:
    """One arm of the chain, ordered outward from the root.

    ``chain`` maps local position (0 = head) to chain index; ``links``
    are the arm-internal link times plus, at position 0, the root-to-head
    link.
    """

    side: str
    chain: np.ndarray  # local -> chain position
    root_link: float  # z between root and head
    inner_links: np.ndarray  # z between consecutive arm members, outward

    @property
    def size(self) -> int:
        return int(self.chain.size)


def verify_split(
    *,
    root_rate: float,
    arm_links: dict[str, float],
    arm_w_bars: dict[str, float],
    order: tuple[str, ...],
    claimed_share: float,
    side: str,
    total_load: float,
    rtol: float = 1e-9,
) -> bool:
    """The arm head's check of the root's star split.

    Recomputes the two-child star allocation from the signed arm bids and
    compares the claimed share for ``side``.  (The root is obedient, so
    in honest runs this always passes; it exists because the protocol
    verifies rather than trusts.)
    """
    sides = [s for s in ("left", "right") if s in arm_w_bars]
    w = np.array([root_rate] + [arm_w_bars[s] for s in sides])
    z = np.array([arm_links[s] for s in sides])
    star_order = tuple(sides.index(s) + 1 for s in order if s in arm_w_bars)
    schedule = solve_star(StarNetwork(w, z), order=star_order)
    expected = float(schedule.alpha[sides.index(side) + 1]) * total_load
    scale = max(abs(expected), 1.0)
    return abs(expected - claimed_share) <= rtol * scale


@dataclass
class InteriorOutcome:
    """Everything a DLS-LIL run produced (chain-position indexing)."""

    completed: bool
    aborted_phase: int | None
    root_index: int
    bids: np.ndarray  # chain order; root position holds w_r
    w_bar: np.ndarray  # per-position equivalent bids (root: star makespan)
    assigned: np.ndarray
    computed: np.ndarray
    actual_rates: np.ndarray
    order: tuple[str, ...]
    sim_result: InteriorChainResult | None
    adjudications: list[Adjudication]
    audits: list[AuditRecord]
    ledger: PaymentLedger
    reports: dict[int, AgentReport]
    makespan: float | None

    def utility(self, chain_index: int) -> float:
        if chain_index == self.root_index:
            return 0.0
        return self.reports[chain_index].utility


class DLSLILMechanism:
    """One configured instance of the interior-origination mechanism.

    Parameters
    ----------
    link_rates:
        Public link times ``z_1 .. z_n`` in chain order.
    root_index:
        Chain position ``r`` of the obedient root (``0 < r < n`` for a
        genuinely interior root; boundary values degenerate to one arm).
    root_rate:
        The root's true unit processing time.
    agents:
        Strategic agents for every chain position except ``root_index``;
        each agent's ``index`` must be its chain position.
    """

    def __init__(
        self,
        link_rates: Sequence[float],
        root_index: int,
        root_rate: float,
        agents: Sequence[ProcessorAgent],
        *,
        fine: float | None = None,
        audit_probability: float = 0.25,
        total_load: float = 1.0,
        rng: np.random.Generator | None = None,
        key_seed: bytes | None = b"dls-lil",
        tracer: Tracer | None = None,
    ) -> None:
        self.z = np.asarray(link_rates, dtype=np.float64)
        n = self.z.size
        if n == 0:
            raise InvalidNetworkError("need at least one link")
        if not 0 <= root_index <= n:
            raise InvalidNetworkError(f"root_index {root_index} out of range")
        expected = sorted(set(range(n + 1)) - {root_index})
        got = sorted(a.index for a in agents)
        if got != expected:
            raise InvalidNetworkError(
                f"agents must cover chain positions {expected}, got {got}"
            )
        self.n = n
        self.root_index = root_index
        self.root_rate = float(root_rate)
        self.agents = {a.index: a for a in agents}
        self.total_load = float(total_load)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.audit_probability = float(audit_probability)
        self.tracer = tracer

        self.registry, keys = KeyRegistry.for_processors(n + 1, seed=key_seed)
        self._keys: dict[int, KeyPair] = {pair.owner: pair for pair in keys}

        true_rates = np.array(
            [self.root_rate] + [a.true_rate for a in agents]
        )
        self.fine = (
            float(fine)
            if fine is not None
            else recommended_fine(true_rates, total_load=self.total_load, max_overcharge=10.0 * true_rates.max())
        )

        self.arms: list[_Arm] = []
        r = root_index
        if r >= 1:
            self.arms.append(
                _Arm(
                    side="left",
                    chain=np.arange(r - 1, -1, -1),
                    root_link=float(self.z[r - 1]),
                    inner_links=self.z[: r - 1][::-1].copy() if r >= 2 else np.empty(0),
                )
            )
        if r <= n - 1:
            self.arms.append(
                _Arm(
                    side="right",
                    chain=np.arange(r + 1, n + 1),
                    root_link=float(self.z[r]),
                    inner_links=self.z[r + 1 :].copy(),
                )
            )

    # ------------------------------------------------------------------

    def _span(self, kind: str, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(kind, **attrs)

    def run(self) -> InteriorOutcome:
        """Execute the four phases and return the outcome.

        When a tracer is attached the run is wrapped in a ``run`` span
        (``topology="linear-interior"``, with the root position as
        ``root``).  Interior runs count under ``mechanism.lil_runs`` to
        keep the boundary-chain run counter untouched.
        """
        registry = get_registry()
        registry.inc("mechanism.lil_runs")
        with registry.timer("mechanism.lil_run"), self._span(
            "run",
            topology="linear-interior",
            n=self.n,
            root=self.root_index,
            fine=self.fine,
            audit_probability=self.audit_probability,
            total_load=self.total_load,
        ) as run_span:
            outcome = self._run_protocol()
        if run_span is not None:
            run_span.set(completed=outcome.completed, makespan=outcome.makespan)
        return outcome

    def _run_protocol(self) -> InteriorOutcome:
        n = self.n
        r = self.root_index
        ledger = PaymentLedger(tracer=self.tracer)
        lambda_device = LambdaDevice(self.total_load)
        meter = TamperProofMeter(self._keys[r], owner=r)
        court = GrievanceCourt(
            self.registry, lambda_device, meter, self.z, self.fine, total_load=self.total_load
        )
        adjudications: list[Adjudication] = []

        bids = np.zeros(n + 1)
        bids[r] = self.root_rate
        for pos, agent in self.agents.items():
            bids[pos] = agent.choose_bid()

        # ---------------- Phase I: per-arm bottom-up bids -----------------
        w_bar = np.zeros(n + 1)
        alpha_hat = np.zeros(n + 1)
        bid_messages: dict[int, SignedMessage] = {}
        for arm in self.arms:
            k = arm.size
            for local in range(k - 1, -1, -1):
                pos = int(arm.chain[local])
                agent = self.agents[pos]
                if local == k - 1:
                    honest = bids[pos]
                else:
                    succ = int(arm.chain[local + 1])
                    tail = w_bar[succ] + float(arm.inner_links[local])
                    honest = tail / (bids[pos] + tail) * bids[pos]
                reported = agent.phase1_w_bar(honest)
                w_bar[pos] = reported
                if local == k - 1:
                    bids[pos] = reported  # arm terminal: w_bar IS the bid
                    alpha_hat[pos] = 1.0
                else:
                    alpha_hat[pos] = reported / bids[pos]
                message = sign(self._keys[pos], bid_payload(pos, reported))
                bid_messages[pos] = message
                second = agent.phase1_second_bid(reported)
                if second is not None and second != reported:
                    recipient = r if local == 0 else int(arm.chain[local - 1])
                    conflicting = sign(self._keys[pos], bid_payload(pos, second))
                    grievance = Grievance(
                        kind=GrievanceKind.CONTRADICTORY_MESSAGES,
                        accuser=recipient,
                        accused=pos,
                        conflicting=(message, conflicting),
                    )
                    adjudications.append(self._settle(court.adjudicate(grievance), ledger, r))
                    return self._aborted(1, bids, w_bar, adjudications, ledger)

        # ---------------- Root: the star split ----------------------------
        arm_links = {arm.side: arm.root_link for arm in self.arms}
        arm_w_bars = {arm.side: float(w_bar[int(arm.chain[0])]) for arm in self.arms}
        sides = [arm.side for arm in self.arms]
        star_w = np.array([self.root_rate] + [arm_w_bars[s] for s in sides])
        star_z = np.array([arm_links[s] for s in sides])
        star_net = StarNetwork(star_w, star_z)
        best = None
        orders = [(1,)] if len(sides) == 1 else [(1, 2), (2, 1)]
        for order in orders:
            sched = solve_star(star_net, order=order)
            if best is None or sched.makespan < best.makespan - 1e-15:
                best = sched
        assert best is not None
        order_names = tuple(sides[i - 1] for i in best.order)
        root_share = float(best.alpha[0]) * self.total_load
        arm_shares = {
            side: float(best.alpha[i + 1]) * self.total_load for i, side in enumerate(sides)
        }
        w_bar[r] = best.makespan
        alpha_hat[r] = float(best.alpha[0])

        # Heads verify the split against the signed bids (the root is
        # obedient, so this always passes in-protocol; the function itself
        # is unit-tested against tampered splits).
        for arm in self.arms:
            head = int(arm.chain[0])
            if self.agents[head].phase2_validates():
                ok = verify_split(
                    root_rate=self.root_rate,
                    arm_links=arm_links,
                    arm_w_bars=arm_w_bars,
                    order=order_names,
                    claimed_share=arm_shares[arm.side],
                    side=arm.side,
                    total_load=self.total_load,
                )
                assert ok, "obedient root produced an inconsistent split"

        # ---------------- Phase II: per-arm G cascades --------------------
        # D values travel as fractions of the total load (the paper's
        # convention; the court and the audit recomputation scale by
        # total_load).
        received_share = np.zeros(n + 1)
        received_share[r] = 1.0
        g_messages: dict[int, GMessage] = {}

        def scalar(signer: int, kind: str, proc: int, value: float) -> SignedMessage:
            return sign(self._keys[signer], value_payload(kind, proc, float(value)))

        for arm in self.arms:
            head = int(arm.chain[0])
            received_share[head] = arm_shares[arm.side] / self.total_load
            g_messages[head] = GMessage(
                recipient=head,
                d_prev=scalar(r, "D", r, 1.0),
                d_self=scalar(r, "D", head, received_share[head]),
                w_bar_prev=scalar(r, "w_bar", r, float(w_bar[r])),
                w_prev=scalar(r, "w", r, self.root_rate),
                w_bar_self=scalar(r, "w_bar", head, float(w_bar[head])),
            )
            for local in range(arm.size):
                pos = int(arm.chain[local])
                agent = self.agents[pos]
                g = g_messages[pos]
                if local >= 1 and agent.phase2_validates():
                    sender = int(arm.chain[local - 1])
                    attestor = r if local == 1 else int(arm.chain[local - 2])
                    z_link = float(arm.inner_links[local - 1])
                    try:
                        verify_g_message(
                            g,
                            registry=self.registry,
                            recipient=pos,
                            own_w_bar=float(w_bar[pos]),
                            z_link=z_link,
                            sender=sender,
                            attestor=attestor,
                        )
                    except ProtocolViolation:
                        grievance = Grievance(
                            kind=GrievanceKind.INCONSISTENT_COMPUTATION,
                            accuser=pos,
                            accused=sender,
                            g_message=g,
                            z_link=z_link,
                            attestor=attestor,
                        )
                        verdict = court.adjudicate(grievance, accuser_bid=bid_messages[pos])
                        adjudications.append(self._settle(verdict, ledger, r))
                        return self._aborted(2, bids, w_bar, adjudications, ledger)
                if local < arm.size - 1:
                    succ = int(arm.chain[local + 1])
                    honest_d_next = received_share[pos] * (1.0 - alpha_hat[pos])
                    d_next = agent.phase2_d_next(honest_d_next)
                    received_share[succ] = d_next
                    echo = agent.phase2_echo_bid(float(w_bar[succ]))
                    g_messages[succ] = GMessage(
                        recipient=succ,
                        d_prev=g.d_self,
                        d_self=scalar(pos, "D", succ, d_next),
                        w_bar_prev=g.w_bar_self,
                        w_prev=scalar(pos, "w", pos, float(bids[pos])),
                        w_bar_self=scalar(pos, "w_bar", succ, echo),
                    )

        assigned = received_share * alpha_hat * self.total_load
        assigned[r] = root_share

        # ---------------- Phase III: distribution & computation ----------
        actual_rates = np.zeros(n + 1)
        actual_rates[r] = self.root_rate
        for pos, agent in self.agents.items():
            actual_rates[pos] = max(agent.choose_execution_rate(), agent.true_rate)

        arm_retained: dict[str, np.ndarray] = {}
        received_actual = np.zeros(n + 1)
        received_actual[r] = self.total_load
        for arm in self.arms:
            k = arm.size
            retained = np.zeros(k)
            inflow = arm_shares[arm.side]
            for local in range(k):
                pos = int(arm.chain[local])
                received_actual[pos] = inflow
                if local == k - 1:
                    retained[local] = inflow
                else:
                    succ = int(arm.chain[local + 1])
                    expected_forward = received_share[succ] * self.total_load
                    choice = self.agents[pos].choose_retention(
                        float(assigned[pos]), float(inflow), float(expected_forward)
                    )
                    retained[local] = float(np.clip(choice, 0.0, inflow))
                inflow -= retained[local]
            arm_retained[arm.side] = retained

        chain_w = np.where(actual_rates > 0, actual_rates, 1.0)
        sim_result = simulate_interior_chain(
            chain_w,
            self.z,
            r,
            root_share,
            arm_shares,
            arm_retained,
            order=order_names,
            speeds=chain_w,
            total_load=self.total_load,
        )
        computed = sim_result.computed

        # Λ certificates: disjoint block ranges per arm.
        certificates: dict[int, LoadCertificate] = {}
        offsets = {}
        cursor = 0
        for arm in self.arms:
            offsets[arm.side] = cursor
            cursor += int(round(arm_shares[arm.side] * lambda_device.blocks_per_unit))
        for arm in self.arms:
            for local in range(arm.size):
                pos = int(arm.chain[local])
                amount = lambda_device.quantize(received_actual[pos])
                certificates[pos] = lambda_device.issue(pos, offsets[arm.side], amount)

        meter_msgs: dict[int, SignedMessage] = {}
        for pos in self.agents:
            meter_msgs[pos] = meter.record(pos, float(actual_rates[pos]), float(computed[pos]))

        # Overload grievances (per arm; do not abort).
        for arm in self.arms:
            for local in range(arm.size):
                pos = int(arm.chain[local])
                expected = received_share[pos] * self.total_load
                if received_actual[pos] > expected + _LOAD_TOL and self.agents[pos].reports_overload():
                    sender = r if local == 0 else int(arm.chain[local - 1])
                    attestor = sender if local == 0 else (r if local == 1 else int(arm.chain[local - 2]))
                    z_link = arm.root_link if local == 0 else float(arm.inner_links[local - 1])
                    grievance = Grievance(
                        kind=GrievanceKind.OVERLOAD,
                        accuser=pos,
                        accused=sender,
                        g_message=g_messages[pos],
                        certificate=certificates[pos],
                        meter_reading=meter_msgs[pos],
                        expected_received=expected,
                        z_link=z_link,
                        attestor=attestor,
                    )
                    adjudications.append(self._settle(court.adjudicate(grievance), ledger, r))

        # Fabricated accusations (deviation (v)) — exculpated by the same
        # signed-commitment check as in DLS-LBL.
        for arm in self.arms:
            for local in range(arm.size):
                pos = int(arm.chain[local])
                agent = self.agents[pos]
                kind = agent.fabricates_accusation()
                expected = received_share[pos] * self.total_load
                if kind is not None and received_actual[pos] <= expected + _LOAD_TOL:
                    sender = r if local == 0 else int(arm.chain[local - 1])
                    attestor = sender if local == 0 else (r if local == 1 else int(arm.chain[local - 2]))
                    z_link = arm.root_link if local == 0 else float(arm.inner_links[local - 1])
                    grievance = Grievance(
                        kind=GrievanceKind.OVERLOAD,
                        accuser=pos,
                        accused=sender,
                        g_message=g_messages[pos],
                        certificate=certificates[pos],
                        meter_reading=meter_msgs[pos],
                        expected_received=expected,
                        z_link=z_link,
                        attestor=attestor,
                    )
                    adjudications.append(self._settle(court.adjudicate(grievance), ledger, r))

        # ---------------- Phase IV: payments ------------------------------
        ledger.pay(r, root_share * self.root_rate, "root reimbursement")
        auditor = Auditor(self.audit_probability, self.fine, self.rng)
        audits: list[AuditRecord] = []
        correct_q = np.zeros(n + 1)
        billed_q = np.zeros(n + 1)
        for arm in self.arms:
            k = arm.size
            for local in range(k):
                pos = int(arm.chain[local])
                agent = self.agents[pos]
                pred = r if local == 0 else int(arm.chain[local - 1])
                z_prev = arm.root_link if local == 0 else float(arm.inner_links[local - 1])
                is_terminal = local == k - 1
                breakdown = payment_breakdown(
                    proc=pos,
                    is_terminal=is_terminal,
                    assigned=float(assigned[pos]),
                    computed=float(computed[pos]),
                    actual_rate=float(actual_rates[pos]),
                    own_bid=float(bids[pos]),
                    own_w_bar=float(w_bar[pos]),
                    own_alpha_hat=float(alpha_hat[pos]),
                    predecessor_bid=float(bids[pred]),
                    z_link=z_prev,
                )
                correct_q[pos] = breakdown.payment
                bill = agent.phase4_bill(breakdown.payment)
                billed_q[pos] = bill
                if bill >= 0:
                    ledger.pay(pos, bill, "phase IV bill")
                else:
                    ledger.fine(pos, -bill, "phase IV bill (negative payment)")

                succ = None if is_terminal else int(arm.chain[local + 1])
                proof = PaymentProof(
                    proc=pos,
                    g_message=g_messages[pos],
                    successor_bid=None if succ is None else bid_messages.get(succ),
                    own_bid=scalar(pos, "w", pos, float(bids[pos])),
                    meter=meter_msgs[pos],
                    certificate=certificates[pos],
                )
                z_next = None if is_terminal else float(arm.inner_links[local])
                record = auditor.audit(
                    pos,
                    bill,
                    proof,
                    lambda p, succ=succ, z_next=z_next, z_prev=z_prev, term=is_terminal: recompute_payment_from_proof(
                        p,
                        registry=self.registry,
                        meter=meter,
                        lambda_device=lambda_device,
                        link_rates=self.z,
                        n_processors=n + 1,
                        total_load=self.total_load,
                        is_terminal=term,
                        successor_signer=succ,
                        z_next=z_next,
                        z_prev=z_prev,
                        meter_signer=r,
                    ),
                )
                audits.append(record)
                if record.fine > 0:
                    ledger.fine(pos, record.fine, f"audit penalty (P{pos})")

        reports = self._reports(
            bids, w_bar, actual_rates, assigned, computed, correct_q, billed_q, ledger
        )
        return InteriorOutcome(
            completed=True,
            aborted_phase=None,
            root_index=r,
            bids=bids,
            w_bar=w_bar,
            assigned=assigned,
            computed=computed,
            actual_rates=actual_rates,
            order=order_names,
            sim_result=sim_result,
            adjudications=adjudications,
            audits=audits,
            ledger=ledger,
            reports=reports,
            makespan=sim_result.makespan,
        )

    # ------------------------------------------------------------------

    def _settle(self, verdict: Adjudication, ledger: PaymentLedger, root: int) -> Adjudication:
        ledger.fine(verdict.fined, verdict.fine_amount, f"grievance fine ({verdict.grievance.kind.value})")
        if verdict.rewarded != root:
            ledger.pay(verdict.rewarded, verdict.reward_amount, f"grievance reward ({verdict.grievance.kind.value})")
        return verdict

    def _aborted(self, phase, bids, w_bar, adjudications, ledger) -> InteriorOutcome:
        zeros = np.zeros(self.n + 1)
        reports = self._reports(bids, w_bar, zeros, zeros, zeros, zeros, zeros, ledger)
        return InteriorOutcome(
            completed=False,
            aborted_phase=phase,
            root_index=self.root_index,
            bids=bids,
            w_bar=w_bar,
            assigned=zeros,
            computed=zeros,
            actual_rates=zeros,
            order=(),
            sim_result=None,
            adjudications=adjudications,
            audits=[],
            ledger=ledger,
            reports=reports,
            makespan=None,
        )

    def _reports(self, bids, w_bar, actual_rates, assigned, computed, correct_q, billed_q, ledger):
        reports: dict[int, AgentReport] = {}
        for pos, agent in self.agents.items():
            fines = sum(
                e.amount for e in ledger.entries_for(pos)
                if e.debtor == pos and "bill" not in e.memo
            )
            rewards = sum(
                e.amount for e in ledger.entries_for(pos)
                if e.creditor == pos and "bill" not in e.memo
            )
            valuation = -float(computed[pos]) * float(actual_rates[pos])
            reports[pos] = AgentReport(
                index=pos,
                strategy=agent.strategy_name,
                true_rate=agent.true_rate,
                bid=float(bids[pos]),
                w_bar=float(w_bar[pos]),
                actual_rate=float(actual_rates[pos]),
                assigned=float(assigned[pos]),
                computed=float(computed[pos]),
                valuation=valuation,
                payment_billed=float(billed_q[pos]),
                payment_correct=float(correct_q[pos]),
                fines=float(fines),
                rewards=float(rewards),
                utility=float(valuation + ledger.balance(pos)),
            )
        return reports
