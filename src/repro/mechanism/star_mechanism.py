"""DLS-SL: a strategyproof mechanism for star (and bus) networks.

The paper's related work anchors DLS-LBL in a family of mechanisms the
authors built for bus [14] and tree [9] networks.  This module provides
that family's star/bus member as a comparator, built on the
*marginal-contribution* generalization of the DLS-LBL bonus:

.. math::

    B_i = T(\\mathbf{w}_{-i}) - T_{\\text{eval}}(\\mathbf{w}, \\tilde w_i)

where :math:`T(\\mathbf{w}_{-i})` is the optimal star makespan *without*
child ``i`` (computed from the others' bids) and :math:`T_{\\text{eval}}`
re-evaluates the bid-derived allocation at ``i``'s *actual* metered rate.
For the two-processor chain this specializes to eq. 4.9's
``w_{j-1} - w_bar_{j-1}(eval)`` exactly.

Strategyproofness follows from the same optimality argument as
Lemma 5.3: the bid-derived allocation evaluated at the true rates is
weakly worse than the truth-derived allocation evaluated at the true
rates, so misreporting can only shrink the bonus; running slower than
capacity shrinks it further.  Voluntary participation follows from
monotonicity (removing a processor never helps).  Both are exercised
empirically by experiment X5.

The protocol is simpler than the chain's: the root communicates with
every child directly, so there is no relaying to verify and no load to
shed onto a neighbour.  The deviations that remain — contradictory bids,
under-computation (abandoning assigned work, caught by the meter),
overcharging — are handled with the same fines and audits as DLS-LBL.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.agents.base import ProcessorAgent
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signing import SignedMessage, sign
from repro.dlt.star import solve_star, star_finishing_times
from repro.exceptions import InvalidNetworkError
from repro.mechanism.audit import AuditRecord, Auditor
from repro.mechanism.dls_lbl import AgentReport
from repro.mechanism.ledger import PaymentLedger
from repro.mechanism.payments import recommended_fine
from repro.network.topology import BusNetwork, StarNetwork
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer
from repro.protocol.grievance import Adjudication
from repro.protocol.messages import bid_payload
from repro.protocol.meter import TamperProofMeter

__all__ = ["StarMechanism", "StarOutcome", "star_bonus"]

#: Meter slack when checking that assigned work was completed.
_WORK_TOL = 1e-9


def star_bonus(
    network: StarNetwork,
    child: int,
    *,
    actual_rate: float,
    order: Sequence[int],
) -> float:
    """The marginal-contribution bonus of ``child`` (1-based index).

    ``network`` carries the *bids*; ``actual_rate`` is the child's
    metered rate.  Both terms are per unit load.
    """
    # T without the child: the star over the remaining children (or the
    # root alone when it was the only child).
    if network.n_children == 1:
        t_without = float(network.w[0])
    else:
        keep = [i for i in range(1, network.size) if i != child]
        reduced = StarNetwork(
            np.concatenate(([network.w[0]], network.w[keep])),
            network.z[np.array(keep) - 1],
        )
        t_without = solve_star(reduced).makespan

    # T evaluated: bid-derived allocation, child's slot re-timed at its
    # actual rate.
    sched = solve_star(network, order=tuple(order))
    w_eval = network.w.copy()
    w_eval[child] = actual_rate
    eval_net = StarNetwork(w_eval, network.z)
    times = star_finishing_times(eval_net, sched.alpha, sched.order)
    t_eval = float(times.max())
    return t_without - t_eval


@dataclass
class StarOutcome:
    """Everything a star-mechanism run produced."""

    completed: bool
    bids: np.ndarray  # (w_0, w_1..w_n); w_0 is the obedient root's rate
    order: tuple[int, ...]
    assigned: np.ndarray
    computed: np.ndarray
    actual_rates: np.ndarray
    adjudications: list[Adjudication]
    audits: list[AuditRecord]
    ledger: PaymentLedger
    reports: dict[int, AgentReport]
    makespan: float | None

    def utility(self, index: int) -> float:
        if index == 0:
            return 0.0
        return self.reports[index].utility


class StarMechanism:
    """One configured instance of the star/bus mechanism.

    Parameters
    ----------
    link_rates:
        Child link times ``z_1 .. z_n`` (a scalar replicates to all
        children — the bus case).
    root_rate:
        The obedient root's unit processing time.
    agents:
        Strategic agents for children ``1 .. n``.
    """

    def __init__(
        self,
        link_rates: Sequence[float] | float,
        root_rate: float,
        agents: Sequence[ProcessorAgent],
        *,
        fine: float | None = None,
        audit_probability: float = 0.25,
        total_load: float = 1.0,
        rng: np.random.Generator | None = None,
        key_seed: bytes | None = b"dls-sl",
        tracer: Tracer | None = None,
    ) -> None:
        agents_sorted = sorted(agents, key=lambda a: a.index)
        n = len(agents_sorted)
        if n == 0:
            raise InvalidNetworkError("need at least one child")
        if [a.index for a in agents_sorted] != list(range(1, n + 1)):
            raise InvalidNetworkError(f"agents must cover indices 1..{n}")
        if np.isscalar(link_rates):
            z = np.full(n, float(link_rates))
        else:
            z = np.asarray(link_rates, dtype=np.float64)
        if z.size != n:
            raise InvalidNetworkError(f"expected {n} links, got {z.size}")
        self.z = z
        self.n = n
        self.root_rate = float(root_rate)
        self.agents = {a.index: a for a in agents_sorted}
        self.total_load = float(total_load)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.audit_probability = float(audit_probability)
        self.registry = self._make_crypto(key_seed)
        true_rates = np.array([self.root_rate] + [a.true_rate for a in agents_sorted])
        self.fine = (
            float(fine)
            if fine is not None
            else recommended_fine(true_rates, total_load=self.total_load, max_overcharge=10.0 * true_rates.max())
        )
        self.tracer = tracer

    # -- infrastructure seams (see DLSLBLMechanism) --------------------

    def _make_crypto(self, key_seed: bytes | None) -> KeyRegistry | None:
        """Build the simulated PKI; returns the verification registry."""
        registry, keys = KeyRegistry.for_processors(self.n + 1, seed=key_seed)
        self._keys: dict[int, KeyPair] | None = {pair.owner: pair for pair in keys}
        return registry

    def _sign(self, signer: int, payload: dict) -> SignedMessage:
        """Sign ``payload`` on behalf of processor ``signer``."""
        return sign(self._keys[signer], payload)

    def _make_meter(self) -> TamperProofMeter:
        """The environment-held execution meter (root-signed readings)."""
        return TamperProofMeter(self._keys[0])

    # ------------------------------------------------------------------

    def _span(self, kind: str, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(kind, **attrs)

    def run(self) -> StarOutcome:
        """Execute the mechanism and return the outcome.

        When a tracer is attached the run is wrapped in a ``run`` span
        (``topology="star"``); fines, audits, and ledger transfers emit
        the same event kinds as DLS-LBL.  Star runs count under
        ``mechanism.star_runs`` to keep the chain-mechanism run counter
        untouched.
        """
        registry = get_registry()
        registry.inc("mechanism.star_runs")
        with registry.timer("mechanism.star_run"), self._span(
            "run",
            topology="star",
            n=self.n,
            fine=self.fine,
            audit_probability=self.audit_probability,
            total_load=self.total_load,
        ) as run_span:
            outcome = self._run_protocol(registry)
        if run_span is not None:
            run_span.set(completed=outcome.completed, makespan=outcome.makespan)
        return outcome

    def _run_protocol(self, registry) -> StarOutcome:
        n = self.n
        ledger = PaymentLedger(tracer=self.tracer)
        meter = self._make_meter()
        adjudications: list[Adjudication] = []

        # Phase I: children bid directly to the root (contradictions are
        # detected by the root itself, which needs no reward).
        bids = np.empty(n + 1)
        bids[0] = self.root_rate
        bid_messages: dict[int, SignedMessage] = {}
        for i in range(1, n + 1):
            agent = self.agents[i]
            bid = agent.choose_bid()
            bids[i] = bid
            message = self._sign(i, bid_payload(i, float(bid)))
            bid_messages[i] = message
            second = agent.phase1_second_bid(float(bid))
            if second is not None and second != bid:
                ledger.fine(i, self.fine, "contradictory bids (root-detected)")
                registry.inc("mechanism.fines")
                registry.inc("mechanism.fine_volume", self.fine)
                if self.tracer is not None:
                    self.tracer.event(
                        "fine",
                        proc=i,
                        amount=self.fine,
                        source="root",
                        reason="contradictory bids",
                    )
                return self._aborted(bids, ledger)

        # Schedule from bids: children served in non-decreasing link time
        # (the public, bid-independent optimal order).
        star = StarNetwork(bids, self.z)
        schedule = solve_star(star, order="by-link")
        assigned = schedule.alpha * self.total_load

        # Phase III: children compute (no relaying — nothing to shed onto).
        actual_rates = np.empty(n + 1)
        actual_rates[0] = self.root_rate
        computed = assigned.copy()
        for i in range(1, n + 1):
            agent = self.agents[i]
            actual_rates[i] = max(agent.choose_execution_rate(), agent.true_rate)
            # choose_retention lets an agent abandon work; there is no
            # downstream victim, so the meter itself is the detector.
            kept = agent.choose_retention(float(assigned[i]), float(assigned[i]), 0.0)
            computed[i] = float(np.clip(kept, 0.0, assigned[i]))
        meter_msgs = {
            i: meter.record(i, float(actual_rates[i]), float(computed[i]))
            for i in range(1, n + 1)
        }
        for i in range(1, n + 1):
            if computed[i] < assigned[i] - _WORK_TOL:
                ledger.fine(i, self.fine, "abandoned assigned work (meter-detected)")
                registry.inc("mechanism.fines")
                registry.inc("mechanism.fine_volume", self.fine)
                if self.tracer is not None:
                    self.tracer.event(
                        "fine",
                        proc=i,
                        amount=self.fine,
                        source="meter",
                        reason="abandoned assigned work",
                    )

        # Phase IV: payments.
        ledger.pay(0, float(assigned[0]) * self.root_rate, "root reimbursement")
        auditor = Auditor(self.audit_probability, self.fine, self.rng)
        audits: list[AuditRecord] = []
        correct_q = np.zeros(n + 1)
        billed_q = np.zeros(n + 1)
        for i in range(1, n + 1):
            agent = self.agents[i]
            if computed[i] <= 0.0:
                correct = 0.0
            else:
                bonus = star_bonus(
                    star, i, actual_rate=float(actual_rates[i]), order=schedule.order
                )
                correct = float(assigned[i]) * float(actual_rates[i]) + bonus
            correct_q[i] = correct
            bill = agent.phase4_bill(correct)
            billed_q[i] = bill
            if bill >= 0:
                ledger.pay(i, bill, "phase IV bill")
            else:
                ledger.fine(i, -bill, "phase IV bill (negative payment)")

            def recompute(_proof, i=i):
                # The root recomputes from its own records: the signed
                # bids and its meter.  (The star has no relayed evidence,
                # so the proof object is the root's own state.)
                reading = meter.reading_for(i)
                if reading is None:
                    return None, "no meter record"
                if reading.computed_amount <= 0.0:
                    return 0.0, "computed nothing"
                bonus = star_bonus(
                    star, i, actual_rate=reading.actual_rate, order=schedule.order
                )
                return (
                    float(assigned[i]) * reading.actual_rate + bonus,
                    "recomputed from root records",
                )

            record = auditor.audit(i, bill, object(), recompute)
            audits.append(record)
            registry.inc("mechanism.audits")
            if record.challenged:
                registry.inc("mechanism.audits_challenged")
            if self.tracer is not None:
                self.tracer.event(
                    "audit",
                    proc=record.proc,
                    challenged=record.challenged,
                    billed=record.billed,
                    recomputed=record.recomputed,
                    proof_valid=record.proof_valid,
                    fine=record.fine,
                    reason=record.reason,
                )
            if record.fine > 0:
                ledger.fine(i, record.fine, f"audit penalty (P{i})")
                registry.inc("mechanism.fines")
                registry.inc("mechanism.fine_volume", record.fine)
                if self.tracer is not None:
                    self.tracer.event(
                        "fine",
                        proc=i,
                        amount=record.fine,
                        source="audit",
                        reason=record.reason,
                    )

        reports = self._reports(bids, actual_rates, assigned, computed, correct_q, billed_q, ledger)
        return StarOutcome(
            completed=True,
            bids=bids,
            order=schedule.order,
            assigned=assigned,
            computed=computed,
            actual_rates=actual_rates,
            adjudications=adjudications,
            audits=audits,
            ledger=ledger,
            reports=reports,
            makespan=float(
                star_finishing_times(
                    StarNetwork(actual_rates, self.z), schedule.alpha, schedule.order
                ).max()
                * self.total_load
            ),
        )

    @classmethod
    def for_bus(
        cls,
        bus: BusNetwork,
        agents: Sequence[ProcessorAgent],
        **kwargs,
    ) -> "StarMechanism":
        """The bus special case (the setting of [14]): every child shares
        the bus rate."""
        return cls(bus.z, float(bus.w[0]), agents, **kwargs)

    # ------------------------------------------------------------------

    def _aborted(self, bids, ledger) -> StarOutcome:
        zeros = np.zeros(self.n + 1)
        reports = self._reports(bids, zeros, zeros, zeros, zeros, zeros, ledger)
        return StarOutcome(
            completed=False,
            bids=bids,
            order=(),
            assigned=zeros,
            computed=zeros,
            actual_rates=zeros,
            adjudications=[],
            audits=[],
            ledger=ledger,
            reports=reports,
            makespan=None,
        )

    def _reports(self, bids, actual_rates, assigned, computed, correct_q, billed_q, ledger):
        reports: dict[int, AgentReport] = {}
        for i in range(1, self.n + 1):
            agent = self.agents[i]
            fines = sum(
                e.amount for e in ledger.entries_for(i)
                if e.debtor == i and "bill" not in e.memo
            )
            rewards = sum(
                e.amount for e in ledger.entries_for(i)
                if e.creditor == i and "bill" not in e.memo
            )
            valuation = -float(computed[i]) * float(actual_rates[i])
            reports[i] = AgentReport(
                index=i,
                strategy=agent.strategy_name,
                true_rate=agent.true_rate,
                bid=float(bids[i]),
                w_bar=float(bids[i]),
                actual_rate=float(actual_rates[i]),
                assigned=float(assigned[i]),
                computed=float(computed[i]),
                valuation=valuation,
                payment_billed=float(billed_q[i]),
                payment_correct=float(correct_q[i]),
                fines=float(fines),
                rewards=float(rewards),
                utility=float(valuation + ledger.balance(i)),
            )
        return reports
