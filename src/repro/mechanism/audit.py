"""Phase IV probabilistic payment audits.

Each processor computes and bills its own payment :math:`Q_j`.  With
probability :math:`q` the root requests ``Proof_j`` (eq. 4.12) and
recomputes the payment from the signed evidence plus its own meter and Λ
records; a missing or invalid proof, or a bill exceeding the recomputable
amount, costs the biller :math:`F/q` — so the *expected* penalty for
overcharging is :math:`q \\cdot F/q = F`, which exceeds any attainable
profit (Lemma 5.1 case (iv), after Mitchell & Teague [17]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.keys import KeyRegistry
from repro.mechanism.payments import payment_breakdown
from repro.protocol.lambda_device import LambdaDevice
from repro.protocol.messages import PaymentProof
from repro.protocol.meter import TamperProofMeter

__all__ = ["AuditRecord", "Auditor", "recompute_payment_from_proof"]

#: Absolute tolerance when comparing a bill to the recomputed payment —
#: generous against floating-point noise, negligible against any
#: profitable overcharge.
BILL_TOL = 1e-6


@dataclass(frozen=True)
class AuditRecord:
    """Outcome of the (possible) audit of one bill."""

    proc: int
    challenged: bool
    billed: float
    recomputed: float | None
    proof_valid: bool
    fine: float
    reason: str = ""


def recompute_payment_from_proof(
    proof: PaymentProof,
    *,
    registry: KeyRegistry,
    meter: TamperProofMeter,
    lambda_device: LambdaDevice,
    link_rates: np.ndarray,
    n_processors: int,
    total_load: float = 1.0,
    is_terminal: bool | None = None,
    successor_signer: int | None = None,
    z_next: float | None = None,
    z_prev: float | None = None,
    meter_signer: int = 0,
) -> tuple[float | None, str]:
    """Root-side recomputation of :math:`Q_j` from ``Proof_j``.

    The trailing keyword overrides exist for the interior-origination
    mechanism, whose arms do not follow boundary-chain index order; the
    defaults reproduce DLS-LBL's conventions (terminal = ``P_m``,
    successor = ``j + 1``, links by chain index).

    Returns ``(payment, reason)``; ``payment`` is ``None`` when the proof
    itself is invalid (bad signatures, certificate mismatch, meter
    reading that contradicts the root's own record).
    """
    j = proof.proc
    m = n_processors - 1
    g = proof.g_message
    if is_terminal is None:
        is_terminal = j == m
    if successor_signer is None:
        successor_signer = j + 1

    # Signature checks on every component the computation uses.
    for component in (*g.components(), proof.own_bid, proof.meter):
        if not component.verify(registry):
            return None, f"proof component signed by {component.signer} fails verification"
    if proof.own_bid.signer != j or proof.meter.signer != meter_signer:
        return None, "proof components have wrong signers"
    if proof.successor_bid is not None:
        if not proof.successor_bid.verify(registry) or proof.successor_bid.signer != successor_signer:
            return None, "successor bid component invalid"

    # The meter reading must match the root's own record (the meter is
    # root-operated; a stale or substituted reading is invalid evidence).
    reading = TamperProofMeter.parse(proof.meter)
    own_record = meter.reading_for(j)
    if own_record is None or not np.isclose(own_record.actual_rate, reading.actual_rate):
        return None, "meter reading does not match the root's record"
    if not np.isclose(own_record.computed_amount, reading.computed_amount):
        return None, "metered amount does not match the root's record"

    # The Λ certificate bounds what the processor can claim it received.
    if not lambda_device.verify(proof.certificate) or proof.certificate.holder != j:
        return None, "load certificate fails Λ verification"

    own_bid = float(proof.own_bid.payload["value"])
    predecessor_bid = float(g.w_prev.payload["value"])
    d_self = float(g.d_self.payload["value"])

    if is_terminal:
        alpha_hat = 1.0
        w_bar = own_bid
    else:
        assert proof.successor_bid is not None
        w_bar_next = float(proof.successor_bid.payload["w_bar"])
        if z_next is None:
            z_next = float(link_rates[j])  # link j+1 has array index j
        alpha_hat = (w_bar_next + z_next) / (own_bid + w_bar_next + z_next)
        w_bar = alpha_hat * own_bid

    if z_prev is None:
        z_prev = float(link_rates[j - 1])
    assigned = d_self * alpha_hat * total_load
    breakdown = payment_breakdown(
        proc=j,
        is_terminal=is_terminal,
        assigned=assigned,
        computed=reading.computed_amount,
        actual_rate=reading.actual_rate,
        own_bid=own_bid,
        own_w_bar=w_bar,
        own_alpha_hat=alpha_hat,
        predecessor_bid=predecessor_bid,
        z_link=z_prev,
    )
    return breakdown.payment, "recomputed from proof"


class Auditor:
    """Draws challenges and levies the ``F/q`` penalty.

    Parameters
    ----------
    audit_probability:
        The challenge probability ``q`` (``0 < q <= 1``).
    fine:
        The base fine ``F``; failed audits cost ``F / q``.
    rng:
        Randomness source for the Bernoulli challenge draws.
    """

    def __init__(self, audit_probability: float, fine: float, rng: np.random.Generator) -> None:
        if not 0.0 < audit_probability <= 1.0:
            raise ValueError("audit probability q must be in (0, 1]")
        self.q = float(audit_probability)
        self.fine = float(fine)
        self.rng = rng

    @property
    def penalty(self) -> float:
        """The audit fine ``F/q``."""
        return self.fine / self.q

    def audit(
        self,
        proc: int,
        billed: float,
        proof: PaymentProof | None,
        recompute,
    ) -> AuditRecord:
        """Audit one bill.

        ``recompute`` is a callable ``(proof) -> (payment | None, reason)``
        — root-side payment recomputation.  A challenged processor whose
        proof is missing, invalid, or supports a smaller payment than it
        billed is fined ``F/q``.
        """
        challenged = bool(self.rng.random() < self.q)
        if not challenged:
            return AuditRecord(
                proc=proc, challenged=False, billed=billed,
                recomputed=None, proof_valid=True, fine=0.0, reason="not challenged",
            )
        if proof is None:
            return AuditRecord(
                proc=proc, challenged=True, billed=billed,
                recomputed=None, proof_valid=False, fine=self.penalty,
                reason="no proof produced",
            )
        recomputed, reason = recompute(proof)
        if recomputed is None:
            return AuditRecord(
                proc=proc, challenged=True, billed=billed,
                recomputed=None, proof_valid=False, fine=self.penalty, reason=reason,
            )
        if billed > recomputed + BILL_TOL:
            return AuditRecord(
                proc=proc, challenged=True, billed=billed,
                recomputed=recomputed, proof_valid=False, fine=self.penalty,
                reason=f"billed {billed} exceeds provable {recomputed}",
            )
        return AuditRecord(
            proc=proc, challenged=True, billed=billed,
            recomputed=recomputed, proof_valid=True, fine=0.0, reason="bill verified",
        )
