"""Population runs of DLS-LBL: many mechanism instances, one trace.

This is the observability layer's workhorse: draw ``count`` random
linear networks, run the mechanism on each, and collect every run's
trace events and metrics into a single deterministic record.  Seeds are
derived from run *identity* (``task_seed(f"mech/{index}", seed)``), the
per-run traces carry only simulated time and logical ids, and
:func:`~repro.obs.tracer.merge_traces` rebases ids in submission order —
so the merged trace is byte-identical at any ``--jobs`` count and across
repeated invocations.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.experiments.runner import task_seed
from repro.obs.metrics import collecting, get_registry, merge_snapshots
from repro.obs.tracer import TraceEvent, Tracer, merge_traces

__all__ = ["PopulationResult", "make_deviant", "run_population"]

#: Deviant strategies injectable via ``INDEX:KIND[:PARAM]`` specs
#: (kind -> (agent class name, default parameter)).
_DEVIANT_KINDS = (
    "shed",
    "overcharge",
    "misbid",
    "slow",
    "contradict",
    "miscompute",
    "tamper",
    "accuse",
)

#: Deviant kinds the stacked arrays can express (bid/rate/bill columns).
#: Everything else — grievance-triggering deviants, aborts, proof
#: tampering, and any traced run — executes on the batch engine's
#: *lane* path (:class:`~repro.mechanism.batch_run.LaneChainMechanism`);
#: there is no scalar fallback.
_BATCHABLE_KINDS = frozenset({"overcharge", "misbid", "slow"})


def make_deviant(spec: str, true_rates: Sequence[float]):
    """Build a deviant agent from an ``INDEX:KIND[:PARAM]`` spec.

    ``INDEX`` is the 1-based agent index into ``true_rates``; ``KIND``
    is one of ``shed``, ``overcharge``, ``misbid``, ``slow``,
    ``contradict``, ``miscompute``, ``tamper``, ``accuse``.  Raises
    :class:`ValueError` on unknown kinds or malformed specs.
    """
    from repro.agents import (
        ContradictoryBidAgent,
        FalseAccuserAgent,
        LoadSheddingAgent,
        MisbiddingAgent,
        MiscomputingAgent,
        OverchargingAgent,
        RelayTamperingAgent,
        SlowExecutionAgent,
    )

    parts = spec.split(":")
    if len(parts) < 2:
        raise ValueError(f"deviant spec must be INDEX:KIND[:PARAM], got {spec!r}")
    index = int(parts[0])
    kind = parts[1]
    param = float(parts[2]) if len(parts) > 2 else None
    if not 1 <= index <= len(true_rates):
        raise ValueError(f"deviant index {index} outside 1..{len(true_rates)}")
    t = float(true_rates[index - 1])
    factories = {
        "shed": lambda: LoadSheddingAgent(index, t, shed_fraction=param if param is not None else 0.5),
        "overcharge": lambda: OverchargingAgent(index, t, overcharge=param if param is not None else 1.0),
        "misbid": lambda: MisbiddingAgent(index, t, bid_factor=param if param is not None else 1.5),
        "slow": lambda: SlowExecutionAgent(index, t, slowdown=param if param is not None else 2.0),
        "contradict": lambda: ContradictoryBidAgent(index, t),
        "miscompute": lambda: MiscomputingAgent(index, t, w_bar_factor=param if param is not None else 0.8),
        "tamper": lambda: RelayTamperingAgent(index, t, d_factor=param if param is not None else 0.7),
        "accuse": lambda: FalseAccuserAgent(index, t),
    }
    if kind not in factories:
        raise ValueError(f"unknown deviant kind {kind!r}; choose from {sorted(factories)}")
    return factories[kind]()


@dataclass(frozen=True)
class PopulationResult:
    """Outcome of :func:`run_population`.

    Attributes
    ----------
    runs:
        One summary dict per mechanism run, in index order.
    events:
        Merged trace events (empty unless tracing was requested); ids
        rebased so the stream is identical at any jobs count.
    metrics:
        Merged metrics snapshot over all runs (wall-clock timers live
        here, never in ``events``).
    """

    runs: list[dict[str, Any]]
    events: list[TraceEvent] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)


def _run_one(
    index: int,
    m: int,
    seed: int,
    audit_probability: float,
    deviant: str | None,
    trace: bool,
    engine: str = "scalar",
) -> tuple[dict[str, Any], list[TraceEvent], dict[str, Any]]:
    """Execute one population member.  Module-level so it pickles into
    pool workers; everything returned is picklable.

    ``engine="lane"`` runs the member on the batch engine's lane path
    (:class:`~repro.mechanism.batch_run.LaneChainMechanism`) — same
    protocol, same outputs bitwise, crypto-free stand-ins."""
    from repro.agents import TruthfulAgent
    from repro.mechanism.ledger import MECHANISM
    from repro.network.generators import random_linear_network

    if engine == "lane":
        from repro.mechanism.batch_run import LaneChainMechanism as mechanism_cls
    else:
        from repro.mechanism.dls_lbl import DLSLBLMechanism as mechanism_cls

    run_seed = task_seed(f"mech/{index}", seed)
    rng = np.random.default_rng(run_seed)
    network = random_linear_network(m, rng)
    true_rates = [float(x) for x in network.w[1:]]
    agents = [TruthfulAgent(i, t) for i, t in enumerate(true_rates, start=1)]
    if deviant is not None:
        agent = make_deviant(deviant, true_rates)
        agents[agent.index - 1] = agent
    tracer = Tracer() if trace else None
    with collecting() as registry:
        mech = mechanism_cls(
            network.z,
            float(network.w[0]),
            agents,
            audit_probability=audit_probability,
            rng=rng,
            tracer=tracer,
        )
        outcome = mech.run()
        snapshot = registry.snapshot()
    fines = sum(e.amount for e in outcome.ledger.entries if e.creditor == MECHANISM)
    summary = {
        "index": index,
        "seed": run_seed,
        "m": m,
        "completed": outcome.completed,
        "aborted_phase": outcome.aborted_phase,
        "makespan": outcome.makespan,
        "fines_total": fines,
        "n_grievances": len(outcome.adjudications),
        "n_audits": len(outcome.audits),
        "mechanism_outlay": outcome.ledger.mechanism_outlay(),
    }
    events = tracer.events if tracer is not None else []
    return summary, events, snapshot


def _batchable(deviant: str | None, trace: bool) -> bool:
    """Whether a run is expressible as a stacked-array lane.

    Traced runs and grievance-triggering deviants are *not* — they take
    the batch engine's lane path instead (never the scalar mechanism)."""
    if trace:
        return False
    if deviant is None:
        return True
    parts = deviant.split(":")
    return len(parts) >= 2 and parts[1] in _BATCHABLE_KINDS


def _run_population_batch(
    m: int,
    count: int,
    seed: int,
    audit_probability: float,
    deviant: str | None,
) -> PopulationResult:
    """The whole population through :func:`~repro.mechanism.batch_run.run_chain_batch`.

    Each run's rng draws its network first and then its ``m`` audit
    draws, exactly as the scalar path consumes the stream; the stacked
    engine then reproduces every summary bitwise.  Metrics hold the
    engine's protocol counters (identical totals to the scalar runs;
    ``crypto.*`` counters and per-phase timers have no batched analogue).
    """
    from repro.mechanism.batch_run import run_chain_batch
    from repro.network.generators import random_linear_network

    w = np.empty((count, m + 1))
    z = np.empty((count, m))
    draws = np.empty((count, m))
    run_seeds: list[int] = []
    for index in range(count):
        run_seed = task_seed(f"mech/{index}", seed)
        run_seeds.append(run_seed)
        rng = np.random.default_rng(run_seed)
        network = random_linear_network(m, rng)
        w[index] = network.w
        z[index] = network.z
        draws[index] = rng.random(m)

    bids = execution_rates = bill_overcharge = None
    if deviant is not None:
        bids = w[:, 1:].copy()
        execution_rates = w[:, 1:].copy()
        bill_overcharge = np.zeros((count, m))
        for index in range(count):
            agent = make_deviant(deviant, [float(x) for x in w[index, 1:]])
            col = agent.index - 1
            bids[index, col] = agent.choose_bid()
            execution_rates[index, col] = agent.choose_execution_rate()
            # The bill inflation is the agent's markup over a zero base.
            bill_overcharge[index, col] = agent.phase4_bill(0.0)

    with collecting() as registry:
        outcome = run_chain_batch(
            w,
            z,
            bids=bids,
            execution_rates=execution_rates,
            bill_overcharge=bill_overcharge,
            audit_probability=audit_probability,
            audit_draws=draws,
        )
        snapshot = registry.snapshot()
    summaries = [
        {
            "index": index,
            "seed": run_seeds[index],
            "m": m,
            "completed": True,
            "aborted_phase": None,
            "makespan": float(outcome.makespan[index]),
            "fines_total": float(outcome.fines_total[index]),
            "n_grievances": 0,
            "n_audits": m,
            "mechanism_outlay": float(outcome.mechanism_outlay[index]),
        }
        for index in range(count)
    ]
    return PopulationResult(runs=summaries, events=[], metrics=snapshot)


def _run_population_masked(
    m: int,
    count: int,
    seed: int,
    audit_probability: float,
    specs: list[str | None],
    trace: bool,
    jobs: int,
) -> PopulationResult:
    """Masked per-lane routing through the batch engine.

    Lanes whose spec is array-expressible (and untraced) ride one stacked
    :func:`~repro.mechanism.batch_run.run_chain_batch` call; divergent
    lanes — grievance-triggering deviants, traced runs — execute on
    :class:`~repro.mechanism.batch_run.LaneChainMechanism`.  Summaries,
    events and metrics zip back in lane order, and per-lane counter
    snapshots merge into the live registry in that same order, so every
    observable (including the float fold order of counter totals) is
    bitwise-equal to the scalar loop.  No lane ever falls back to the
    scalar mechanisms.
    """
    from repro.mechanism.batch_run import chain_row_snapshots, run_chain_batch
    from repro.network.generators import random_linear_network

    lane_mask = [trace or not _batchable(specs[i], False) for i in range(count)]
    array_rows = [i for i in range(count) if not lane_mask[i]]
    lane_rows = [i for i in range(count) if lane_mask[i]]

    row_summary: dict[int, dict[str, Any]] = {}
    row_events: dict[int, list[TraceEvent]] = {}
    row_snapshot: dict[int, dict[str, Any]] = {}

    if array_rows:
        n_arr = len(array_rows)
        w = np.empty((n_arr, m + 1))
        z = np.empty((n_arr, m))
        draws = np.empty((n_arr, m))
        seeds = np.empty(n_arr, dtype=np.int64)
        for k, index in enumerate(array_rows):
            run_seed = task_seed(f"mech/{index}", seed)
            seeds[k] = run_seed
            rng = np.random.default_rng(run_seed)
            network = random_linear_network(m, rng)
            w[k] = network.w
            z[k] = network.z
            draws[k] = rng.random(m)
        bids = execution_rates = bill_overcharge = None
        if any(specs[index] is not None for index in array_rows):
            bids = w[:, 1:].copy()
            execution_rates = w[:, 1:].copy()
            bill_overcharge = np.zeros((n_arr, m))
            for k, index in enumerate(array_rows):
                if specs[index] is None:
                    continue
                agent = make_deviant(specs[index], [float(x) for x in w[k, 1:]])
                col = agent.index - 1
                bids[k, col] = agent.choose_bid()
                execution_rates[k, col] = agent.choose_execution_rate()
                bill_overcharge[k, col] = agent.phase4_bill(0.0)
        outcome = run_chain_batch(
            w,
            z,
            bids=bids,
            execution_rates=execution_rates,
            bill_overcharge=bill_overcharge,
            audit_probability=audit_probability,
            audit_draws=draws,
            # Counters merge per lane, in lane order, below.
            emit_metrics=False,
        )
        snapshots = chain_row_snapshots(outcome)
        for k, index in enumerate(array_rows):
            row_summary[index] = {
                "index": index,
                "seed": int(seeds[k]),
                "m": m,
                "completed": True,
                "aborted_phase": None,
                "makespan": float(outcome.makespan[k]),
                "fines_total": float(outcome.fines_total[k]),
                "n_grievances": 0,
                "n_audits": m,
                "mechanism_outlay": float(outcome.mechanism_outlay[k]),
            }
            row_events[index] = []
            row_snapshot[index] = snapshots[k]

    if jobs <= 1:
        # Interleave in lane order: lane rows merge their metric deltas
        # into the live registry as they run (``collecting`` on exit),
        # array rows merge their synthesized snapshots in between — the
        # same per-run fold order as the scalar loop.
        registry = get_registry()
        for index in range(count):
            if lane_mask[index]:
                summary, events, snapshot = _run_one(
                    index, m, seed, audit_probability, specs[index], trace, "lane"
                )
                row_summary[index] = summary
                row_events[index] = events
                row_snapshot[index] = snapshot
            elif array_rows:
                registry.merge(row_snapshot[index])
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _run_one, index, m, seed, audit_probability, specs[index], trace, "lane"
                )
                for index in lane_rows
            ]
            # Submission order, not completion order — determinism.
            results = [future.result() for future in futures]
        for index, (summary, events, snapshot) in zip(lane_rows, results):
            row_summary[index] = summary
            row_events[index] = events
            row_snapshot[index] = snapshot
        # Worker deltas never reached this process's registry; merge
        # every lane's snapshot in lane order, like the scalar pool path.
        registry = get_registry()
        for index in range(count):
            registry.merge(row_snapshot[index])

    summaries = [row_summary[index] for index in range(count)]
    events = merge_traces([row_events[index] for index in range(count)])
    metrics = merge_snapshots([row_snapshot[index] for index in range(count)])
    return PopulationResult(runs=summaries, events=events, metrics=metrics)


def run_population(
    m: int,
    count: int,
    *,
    seed: int = 0,
    jobs: int = 1,
    audit_probability: float = 0.25,
    deviant: str | None = None,
    deviants: Sequence[str | None] | None = None,
    trace: bool = False,
    use_batch: bool = False,
) -> PopulationResult:
    """Run the mechanism on ``count`` random ``(m+1)``-processor chains.

    Run ``i`` draws its network and mechanism randomness from
    ``task_seed(f"mech/{i}", seed)``, so results (and the merged trace)
    are functions of ``(m, count, seed, audit_probability, deviant)``
    only — ``jobs`` changes wall-clock, never output.

    ``deviants`` assigns a per-run deviant spec (``None`` entries are
    truthful runs) and is mutually exclusive with ``deviant``, which
    applies one spec to every run.

    ``use_batch=True`` routes the population through the batched
    Phase I–IV engine (:mod:`repro.mechanism.batch_run`) with **no
    scalar fallback**: array-expressible lanes (truthful and
    bid/rate/bill deviants, untraced) run as one stacked vectorized
    pass, and every other lane — grievance-triggering deviants, aborts,
    proof tampering, traced runs — executes on the engine's masked lane
    path, bitwise-equal to the scalar loop in every summary field,
    protocol counter, and trace byte.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if deviants is not None:
        if deviant is not None:
            raise ValueError("pass either deviant or deviants, not both")
        specs = [None if s is None else str(s) for s in deviants]
        if len(specs) != count:
            raise ValueError(f"deviants must have length {count}, got {len(specs)}")
    else:
        specs = [deviant] * count
    if use_batch:
        if deviants is None and _batchable(deviant, trace):
            return _run_population_batch(m, count, seed, audit_probability, deviant)
        return _run_population_masked(
            m, count, seed, audit_probability, specs, trace, jobs
        )
    tasks = [(i, m, seed, audit_probability, specs[i], trace) for i in range(count)]
    if jobs <= 1:
        outcomes = [_run_one(*task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_run_one, *task) for task in tasks]
            # Submission order, not completion order — determinism.
            outcomes = [future.result() for future in futures]
        # In-process runs merged their deltas via collecting(); worker
        # runs only merged into the (discarded) worker registry, so
        # bring their snapshots home here.
        registry = get_registry()
        for _summary, _events, snapshot in outcomes:
            registry.merge(snapshot)
    summaries = [summary for summary, _events, _snapshot in outcomes]
    events = merge_traces([events for _summary, events, _snapshot in outcomes])
    metrics = merge_snapshots([snapshot for _summary, _events, snapshot in outcomes])
    return PopulationResult(runs=summaries, events=events, metrics=metrics)
