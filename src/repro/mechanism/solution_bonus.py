"""The solution-bonus variant of the payment function (paper eq. 4.13).

For loads whose solution is verifiable (searches, factorizations), the
payment gains a term ``S``: ``S = s`` for every participating processor
if a solution is found and ``0`` otherwise.  A selfish-and-annoying agent
that corrupts or duplicates data reduces the probability the solution is
found and therefore strictly reduces its own expected utility by
:math:`s \\cdot \\Delta p` — Theorem 5.2's deterrent.

The model: the solution hides uniformly in the unit load, so the
probability it is found equals the fraction of the load that is processed
*correctly* — the load wasted by an annoying agent is whatever fraction
of the data passing through it it renders useless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.agents.annoying import AnnoyingAgent
from repro.agents.base import ProcessorAgent

__all__ = [
    "SolutionBonusConfig",
    "probability_solution_found",
    "expected_solution_utility",
    "simulate_solution_rounds",
]


@dataclass(frozen=True)
class SolutionBonusConfig:
    """Parameters of the eq. 4.13 variant.

    ``s`` is "a small, positive quantity that rewards agents for following
    the given algorithm".
    """

    s: float = 0.1

    def __post_init__(self) -> None:
        if self.s < 0:
            raise ValueError("the solution bonus s must be non-negative")


def wasted_load(
    agents: Sequence[ProcessorAgent],
    forwarded: np.ndarray,
) -> float:
    """Total load units whose processing is wasted by annoying behaviour.

    ``forwarded[i]`` is the load that flowed *through* agent ``i`` to its
    successors (that is the data an agent can corrupt or duplicate).
    Waste from distinct agents affects disjoint shares of the stream in
    the worst case; we take the union bound capped at the total forwarded.
    """
    total = 0.0
    for agent in agents:
        if isinstance(agent, AnnoyingAgent):
            total += agent.wasted_fraction() * float(forwarded[agent.index])
    return total


def probability_solution_found(
    agents: Sequence[ProcessorAgent],
    forwarded: np.ndarray,
    *,
    total_load: float = 1.0,
) -> float:
    """Probability the (uniformly hidden) solution is found."""
    wasted = min(wasted_load(agents, forwarded), total_load)
    return 1.0 - wasted / total_load


def expected_solution_utility(
    base_utilities: Mapping[int, float],
    agents: Sequence[ProcessorAgent],
    forwarded: np.ndarray,
    config: SolutionBonusConfig,
    *,
    total_load: float = 1.0,
) -> dict[int, float]:
    """Per-agent expected utility under eq. 4.13.

    Every participating agent's payment gains ``s * P(found)`` in
    expectation, so an agent whose behaviour lowers ``P(found)`` lowers
    its *own* expected utility — there is no way to waste data and keep
    the full expected bonus.
    """
    p = probability_solution_found(agents, forwarded, total_load=total_load)
    return {
        index: utility + config.s * p for index, utility in base_utilities.items()
    }


def simulate_solution_rounds(
    agents: Sequence[ProcessorAgent],
    forwarded: np.ndarray,
    config: SolutionBonusConfig,
    rng: np.random.Generator,
    *,
    n_rounds: int = 1000,
    total_load: float = 1.0,
    vectorized: bool = False,
) -> float:
    """Monte Carlo estimate of ``P(found)``: each round hides the solution
    uniformly in the load and checks whether it fell in a wasted span.

    Wasted spans are laid out at the *tail* of each annoying agent's
    forwarded stream (the layout does not affect the probability for a
    uniform solution; it only needs to be consistent).  Used by tests to
    validate the closed form within sampling error.

    With ``vectorized=True`` the span membership test runs as one numpy
    pass over all rounds.  The positions come from the same single
    ``rng.uniform`` draw and the comparisons are the same IEEE-754
    predicates, so both paths return the identical estimate.
    """
    spans: list[tuple[float, float]] = []
    for agent in agents:
        if isinstance(agent, AnnoyingAgent) and agent.wasted_fraction() > 0:
            fwd = float(forwarded[agent.index])
            wasted = agent.wasted_fraction() * fwd
            # The stream through agent i is the trailing `fwd` units.
            start = total_load - fwd
            spans.append((start, start + wasted))
    positions = rng.uniform(0.0, total_load, n_rounds)
    if vectorized:
        in_wasted = np.zeros(n_rounds, dtype=bool)
        for a, b in spans:
            in_wasted |= (a <= positions) & (positions < b)
        return int(n_rounds - in_wasted.sum()) / n_rounds
    hits = 0
    for x in positions:
        if not any(a <= x < b for a, b in spans):
            hits += 1
    return hits / n_rounds
