"""The DLS-LBL mechanism — the paper's primary contribution.

- :mod:`repro.mechanism.payments` — the payment structure of Phase IV
  (valuation, compensation, recompense, bonus, utility; eqs. 4.3–4.11).
- :mod:`repro.mechanism.dls_lbl` — the four-phase mechanism orchestrator
  over strategic agents.
- :mod:`repro.mechanism.audit` — probabilistic payment audits (fine
  ``F/q``).
- :mod:`repro.mechanism.solution_bonus` — the eq. 4.13 variant for
  selfish-and-annoying agents.
- :mod:`repro.mechanism.properties` — empirical checkers for the paper's
  theorems (strategyproofness, voluntary participation, compliance).
"""

from repro.mechanism.ledger import LedgerEntry, PaymentLedger
from repro.mechanism.payments import (
    BatchPaymentBreakdown,
    PaymentBreakdown,
    adjusted_equivalent_time,
    bonus,
    compensation,
    payment_breakdown,
    payment_breakdown_batch,
    recommended_fine,
    recompense,
    valuation,
)
from repro.mechanism.audit import AuditRecord, Auditor
from repro.mechanism.dls_lbl import AgentReport, DLSLBLMechanism, MechanismOutcome
from repro.mechanism.dls_lil import DLSLILMechanism, InteriorOutcome, verify_split
from repro.mechanism.star_mechanism import StarMechanism, StarOutcome, star_bonus
from repro.mechanism.tree_mechanism import TreeMechanism, TreeOutcome
from repro.mechanism.solution_bonus import SolutionBonusConfig, expected_solution_utility
from repro.mechanism.properties import (
    StrategyproofnessReport,
    check_voluntary_participation,
    sweep_bids,
    utility_of_bid,
)

__all__ = [
    "AgentReport",
    "AuditRecord",
    "Auditor",
    "BatchPaymentBreakdown",
    "DLSLBLMechanism",
    "DLSLILMechanism",
    "InteriorOutcome",
    "LedgerEntry",
    "MechanismOutcome",
    "PaymentBreakdown",
    "PaymentLedger",
    "SolutionBonusConfig",
    "StarMechanism",
    "StarOutcome",
    "TreeMechanism",
    "TreeOutcome",
    "star_bonus",
    "StrategyproofnessReport",
    "adjusted_equivalent_time",
    "bonus",
    "check_voluntary_participation",
    "compensation",
    "expected_solution_utility",
    "payment_breakdown",
    "payment_breakdown_batch",
    "recommended_fine",
    "recompense",
    "sweep_bids",
    "utility_of_bid",
    "valuation",
    "verify_split",
]
