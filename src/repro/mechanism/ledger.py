"""The payment infrastructure (paper Section 4: "we assume the existence
of a payment infrastructure").

A double-entry ledger over processor accounts plus the mechanism's own
account.  Every movement is a transfer, so total balance is identically
zero — the conservation invariant the property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.exceptions import LedgerError
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer

__all__ = ["LedgerEntry", "PaymentLedger", "MECHANISM"]

#: Account name of the mechanism itself (the payer of compensation and
#: bonuses, the recipient of fines).
MECHANISM = "mechanism"

Account = Union[int, str]


@dataclass(frozen=True)
class LedgerEntry:
    """One transfer: ``amount`` moves from ``debtor`` to ``creditor``."""

    debtor: Account
    creditor: Account
    amount: float
    memo: str

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise LedgerError(f"transfer amounts must be non-negative: {self}")


class PaymentLedger:
    """Double-entry ledger with named accounts.

    Examples
    --------
    >>> ledger = PaymentLedger()
    >>> ledger.pay(3, 2.5, "compensation")
    >>> ledger.fine(3, 1.0, "phase II violation")
    >>> round(ledger.balance(3), 10)
    1.5
    >>> round(ledger.total_balance(), 10)
    0.0
    """

    def __init__(self, *, tracer: "Tracer | None" = None) -> None:
        self.entries: list[LedgerEntry] = []
        self._balances: dict[Account, float] = {}
        #: Optional event tracer; every transfer emits ``ledger_transfer``.
        self.tracer = tracer

    def transfer(self, debtor: Account, creditor: Account, amount: float, memo: str) -> None:
        """Record a transfer from ``debtor`` to ``creditor``."""
        entry = LedgerEntry(debtor=debtor, creditor=creditor, amount=float(amount), memo=memo)
        self.entries.append(entry)
        self._balances[debtor] = self._balances.get(debtor, 0.0) - entry.amount
        self._balances[creditor] = self._balances.get(creditor, 0.0) + entry.amount
        registry = get_registry()
        registry.inc("ledger.transfers")
        registry.inc("ledger.volume", entry.amount)
        if self.tracer is not None:
            self.tracer.event(
                "ledger_transfer",
                debtor=debtor,
                creditor=creditor,
                amount=entry.amount,
                memo=memo,
            )

    def pay(self, proc: Account, amount: float, memo: str) -> None:
        """Mechanism pays ``proc`` (compensation, bonus, reward)."""
        self.transfer(MECHANISM, proc, amount, memo)

    def fine(self, proc: Account, amount: float, memo: str) -> None:
        """``proc`` pays the mechanism (fines)."""
        self.transfer(proc, MECHANISM, amount, memo)

    def balance(self, account: Account) -> float:
        """Net balance of ``account`` (positive = received more than paid)."""
        return self._balances.get(account, 0.0)

    def total_balance(self) -> float:
        """Sum over all accounts; identically zero for a consistent ledger."""
        return sum(self._balances.values())

    def entries_for(self, account: Account) -> list[LedgerEntry]:
        return [e for e in self.entries if e.debtor == account or e.creditor == account]

    def mechanism_outlay(self) -> float:
        """Net amount the mechanism disbursed (the "cost of incentives")."""
        return -self.balance(MECHANISM)
