"""The DLS-LBL mechanism orchestrator (paper Section 4).

Runs the four phases over a chain of strategic agents:

- **Phase I** — each processor computes its equivalent bid
  :math:`\\bar w_i` bottom-up and sends it, signed, to its predecessor;
  contradictory bids are reported and fined.
- **Phase II** — the root computes the schedule head and the ``G_i``
  bundles cascade down; every processor re-verifies its predecessor's
  arithmetic (eq. 2.7 identities) against the signed evidence; failures
  are reported, fined, and abort the run.
- **Phase III** — the load flows down the chain (simulated on the
  one-port/front-end discrete-event model); Λ certificates expose
  load-shedding; victims grieve and offenders are fined
  :math:`F + (\\tilde\\alpha_{i+1}-\\alpha_{i+1})\\tilde w_{i+1}`.
- **Phase IV** — each processor bills its own payment
  (:func:`~repro.mechanism.payments.payment_breakdown`); the root audits
  with probability ``q`` and fines invalid bills ``F/q``.

The run is deterministic given the agents, the network and the RNG; all
money movements go through the :class:`~repro.mechanism.ledger.PaymentLedger`
so the conservation invariant is checkable afterwards.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.agents.base import ProcessorAgent
from repro.obs.metrics import get_registry
from repro.obs.perf import span as perf_span
from repro.obs.tracer import Tracer
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signing import SignedMessage, sign
from repro.dlt.allocation import LinearSchedule
from repro.exceptions import InvalidNetworkError, ProtocolViolation
from repro.mechanism.audit import AuditRecord, Auditor, recompute_payment_from_proof
from repro.mechanism.ledger import PaymentLedger
from repro.mechanism.payments import payment_breakdown, recommended_fine
from repro.network.topology import LinearNetwork
from repro.protocol.grievance import Adjudication, GrievanceCourt
from repro.protocol.lambda_device import LambdaDevice, LoadCertificate
from repro.protocol.messages import (
    GMessage,
    Grievance,
    GrievanceKind,
    PaymentProof,
    bid_payload,
    value_payload,
)
from repro.protocol.meter import TamperProofMeter
from repro.protocol.verification import verify_g_message
from repro.sim.linear_sim import LinearChainResult, simulate_linear_chain

__all__ = ["AgentReport", "DLSLBLMechanism", "MechanismOutcome"]

#: Load-comparison slack (block-quantization plus float noise).
_LOAD_TOL = 1e-7


@dataclass(frozen=True)
class AgentReport:
    """Per-processor outcome of one mechanism run.

    ``utility`` is the paper's :math:`U_j` (eq. 4.4) extended with the
    grievance/audit transfers: valuation plus everything that reached the
    processor's ledger account.
    """

    index: int
    strategy: str
    true_rate: float
    bid: float
    w_bar: float
    actual_rate: float
    assigned: float
    computed: float
    valuation: float
    payment_billed: float
    payment_correct: float
    fines: float
    rewards: float
    utility: float


@dataclass
class MechanismOutcome:
    """Everything a run produced."""

    completed: bool
    aborted_phase: int | None
    bids: np.ndarray
    w_bar: np.ndarray
    schedule: LinearSchedule | None
    assigned: np.ndarray
    computed: np.ndarray
    actual_rates: np.ndarray
    sim_result: LinearChainResult | None
    adjudications: list[Adjudication]
    audits: list[AuditRecord]
    ledger: PaymentLedger
    reports: dict[int, AgentReport]
    makespan: float | None

    def utility(self, index: int) -> float:
        """Utility of processor ``index`` (0 for the root by eq. 4.3)."""
        if index == 0:
            return 0.0
        return self.reports[index].utility

    def total_payments(self) -> float:
        """The mechanism's net outlay (cost of incentives plus work)."""
        return self.ledger.mechanism_outlay()


class DLSLBLMechanism:
    """One configured instance of the mechanism.

    Parameters
    ----------
    link_rates:
        Public unit communication times ``z_1 .. z_m`` (links and their
        protocols are obedient/tamper-proof by assumption).
    root_rate:
        The obedient root's true unit processing time ``w_0``.
    agents:
        Strategic agents for positions ``1 .. m`` (any order; indices
        must be exactly ``1..m``).
    fine:
        The fine ``F``; defaults to
        :func:`~repro.mechanism.payments.recommended_fine` over the
        *true* rates with a safety margin.
    audit_probability:
        The Phase IV challenge probability ``q``.
    total_load:
        Load units originating at the root.
    rng:
        Randomness for audit draws (and nothing else — the protocol is
        deterministic).
    key_seed:
        Optional deterministic seed for the simulated PKI.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when given, the run
        emits ``run``/``phase_*`` spans plus ``grievance``, ``fine``,
        ``audit``, ``ledger_transfer`` and ``sim_interval`` events.
        ``None`` (the default) records nothing and costs nothing.
    """

    def __init__(
        self,
        link_rates: Sequence[float],
        root_rate: float,
        agents: Sequence[ProcessorAgent],
        *,
        fine: float | None = None,
        audit_probability: float = 0.25,
        total_load: float = 1.0,
        rng: np.random.Generator | None = None,
        key_seed: bytes | None = b"dls-lbl",
        enforcement: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        self.z = np.asarray(link_rates, dtype=np.float64)
        if self.z.ndim != 1 or self.z.size == 0:
            raise InvalidNetworkError("need at least one link (m >= 1)")
        agents_sorted = sorted(agents, key=lambda a: a.index)
        if [a.index for a in agents_sorted] != list(range(1, self.z.size + 1)):
            raise InvalidNetworkError(
                f"agents must cover indices 1..{self.z.size}, got "
                f"{[a.index for a in agents_sorted]}"
            )
        self.agents = {a.index: a for a in agents_sorted}
        self.m = self.z.size
        self.root_rate = float(root_rate)
        self.total_load = float(total_load)
        self.rng = rng if rng is not None else np.random.default_rng(0)

        self.registry = self._make_crypto(key_seed)

        true_rates = np.array([self.root_rate] + [a.true_rate for a in agents_sorted])
        self.fine = (
            float(fine)
            if fine is not None
            else recommended_fine(true_rates, total_load=self.total_load, max_overcharge=10.0 * true_rates.max())
        )
        self.audit_probability = float(audit_probability)
        #: Ablation switch: when ``False``, the verification machinery is
        #: disabled — no Phase I/II checks, no Λ grievances, no audits.
        #: Exists only so experiment A1 can quantify what each enforcement
        #: component is worth; a deployment would never disable it.
        self.enforcement = bool(enforcement)
        self.tracer = tracer

    # -- infrastructure seams ------------------------------------------
    #
    # Every piece of environment machinery the protocol touches — the
    # PKI, message signing, the tamper-proof meter, the Phase III
    # simulator — is reached through one of these overridable seams.
    # The protocol logic itself (phases, grievances, audits, settlement,
    # tracing) never changes; the batched lane engine subclasses swap
    # in crypto-free stand-ins and a closed-form chain replay while
    # inheriting every branch of the real mechanism verbatim.

    def _make_crypto(self, key_seed: bytes | None) -> KeyRegistry | None:
        """Build the simulated PKI; returns the verification registry."""
        registry, keys = KeyRegistry.for_processors(self.m + 1, seed=key_seed)
        self._keys: dict[int, KeyPair] | None = {pair.owner: pair for pair in keys}
        return registry

    def _sign(self, signer: int, payload: dict) -> SignedMessage:
        """Sign ``payload`` on behalf of processor ``signer``."""
        return sign(self._keys[signer], payload)

    def _make_meter(self) -> TamperProofMeter:
        """The environment-held execution meter (root-signed readings)."""
        return TamperProofMeter(self._keys[0])

    def _simulate(
        self, network: LinearNetwork, retained: np.ndarray, delays: np.ndarray
    ) -> LinearChainResult:
        """Phase III store-and-forward execution on ``network``."""
        return simulate_linear_chain(
            network,
            retained,
            speeds=network.w,
            total_load=self.total_load,
            # Only pass the seam when somebody actually delays: the
            # honest path must stay byte-identical to older traces.
            send_delays=delays if np.any(delays > 0.0) else None,
        )

    # ------------------------------------------------------------------

    def _span(self, kind: str, **attrs):
        """A tracer span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(kind, **attrs)

    def run(self) -> MechanismOutcome:
        """Execute Phases I–IV and return the full outcome.

        The run is wrapped in a ``run`` trace span with one nested span
        per protocol phase; per-phase wall-clock goes to the metrics
        registry (``time.mechanism.phase_*``), never into the trace.
        """
        registry = get_registry()
        registry.inc("mechanism.runs")
        with registry.timer("mechanism.run"), perf_span("mechanism"), self._span(
            "run",
            m=self.m,
            fine=self.fine,
            audit_probability=self.audit_probability,
            total_load=self.total_load,
            enforcement=self.enforcement,
        ) as run_span:
            outcome = self._run_phases(registry)
        if run_span is not None:
            run_span.set(
                completed=outcome.completed,
                aborted_phase=outcome.aborted_phase,
                makespan=outcome.makespan,
            )
        return outcome

    def _run_phases(self, registry) -> MechanismOutcome:
        m = self.m
        ledger = PaymentLedger(tracer=self.tracer)
        lambda_device = LambdaDevice(self.total_load)
        meter = self._make_meter()
        court = GrievanceCourt(
            self.registry, lambda_device, meter, self.z, self.fine, total_load=self.total_load
        )
        self._court = court
        adjudications: list[Adjudication] = []

        # Raw bids w_i.  The terminal's Phase I "computation" is its bid.
        bids = np.empty(m + 1)
        bids[0] = self.root_rate
        with perf_span("bidding"):
            for i in range(1, m + 1):
                bids[i] = self.agents[i].choose_bid()

        # ---------------- Phase I: bottom-up equivalent bids -------------
        w_bar = np.empty(m + 1)
        alpha_hat = np.empty(m + 1)
        bid_messages: dict[int, SignedMessage] = {}
        with registry.timer("mechanism.phase_1"), perf_span("phase_1"), self._span("phase_1", m=m):
            for i in range(m, 0, -1):
                agent = self.agents[i]
                if i == m:
                    honest = bids[m]
                else:
                    tail = w_bar[i + 1] + self.z[i]  # link i+1 is z[i]
                    hat = tail / (bids[i] + tail)
                    honest = hat * bids[i]
                reported = agent.phase1_w_bar(honest)
                w_bar[i] = reported
                if i == m:
                    # The terminal's equivalent bid IS its raw bid
                    # (alpha_hat_m = 1), so a "miscomputed" report is simply a
                    # different bid.
                    bids[m] = reported
                    alpha_hat[i] = 1.0
                else:
                    # The local fraction consistent with the agent's own signed
                    # story (honest agents: the true alpha_hat).
                    alpha_hat[i] = reported / bids[i]
                message = self._sign(i, bid_payload(i, reported))
                bid_messages[i] = message
                if self.enforcement and agent.phase1_sends_malformed():
                    # "Processor P_{i-1} terminates the protocol if it ...
                    # receives malformed or inauthentic messages."  With no
                    # authentic evidence there is nobody to fine.
                    return self._aborted(1, bids, w_bar, adjudications, ledger)
                second = agent.phase1_second_bid(reported)
                if self.enforcement and second is not None and second != reported:
                    # Deviation (i): the recipient P_{i-1} holds two authentic,
                    # different bids and submits both to the root.
                    conflicting = self._sign(i, bid_payload(i, second))
                    grievance = Grievance(
                        kind=GrievanceKind.CONTRADICTORY_MESSAGES,
                        accuser=i - 1,
                        accused=i,
                        conflicting=(message, conflicting),
                    )
                    adjudications.append(self._settle(court.adjudicate(grievance), ledger))
                    return self._aborted(1, bids, w_bar, adjudications, ledger)

            # Root-side head of the reduction (the root is obedient).
            tail0 = w_bar[1] + self.z[0]
            alpha_hat[0] = tail0 / (bids[0] + tail0)
            w_bar[0] = alpha_hat[0] * bids[0]

        # ---------------- Phase II: top-down G cascade --------------------
        received_share = np.empty(m + 1)  # D_i per unit load, per the bids
        received_share[0] = 1.0
        g_messages: dict[int, GMessage] = {}

        def scalar(signer: int, kind: str, proc: int, value: float) -> SignedMessage:
            return self._sign(signer, value_payload(kind, proc, value))

        with registry.timer("mechanism.phase_2"), perf_span("phase_2"), self._span("phase_2"):
            # Root constructs G_1 (eq. 4.1) — all components root-signed.
            received_share[1] = 1.0 - alpha_hat[0]
            g_messages[1] = GMessage(
                recipient=1,
                d_prev=scalar(0, "D", 0, 1.0),
                d_self=scalar(0, "D", 1, received_share[1]),
                w_bar_prev=scalar(0, "w_bar", 0, w_bar[0]),
                w_prev=scalar(0, "w", 0, bids[0]),
                w_bar_self=scalar(0, "w_bar", 1, w_bar[1]),
            )

            for i in range(1, m + 1):
                agent = self.agents[i]
                g = g_messages[i]
                if self.enforcement and agent.phase2_validates():
                    try:
                        verify_g_message(
                            g,
                            registry=self.registry,
                            recipient=i,
                            own_w_bar=w_bar[i],
                            z_link=float(self.z[i - 1]),
                        )
                    except ProtocolViolation:
                        grievance = Grievance(
                            kind=GrievanceKind.INCONSISTENT_COMPUTATION,
                            accuser=i,
                            accused=i - 1,
                            g_message=g,
                        )
                        verdict = court.adjudicate(grievance, accuser_bid=bid_messages[i])
                        adjudications.append(self._settle(verdict, ledger))
                        return self._aborted(2, bids, w_bar, adjudications, ledger)
                if i < m:
                    honest_d_next = received_share[i] * (1.0 - alpha_hat[i])
                    d_next = agent.phase2_d_next(honest_d_next)
                    received_share[i + 1] = d_next
                    echo = agent.phase2_echo_bid(w_bar[i + 1])
                    g_messages[i + 1] = GMessage(
                        recipient=i + 1,
                        d_prev=g.d_self,  # relay dsm_{i-1}(D_i)
                        d_self=scalar(i, "D", i + 1, d_next),
                        w_bar_prev=g.w_bar_self,  # relay dsm_{i-1}(w_bar_i)
                        w_prev=scalar(i, "w", i, bids[i]),
                        w_bar_self=scalar(i, "w_bar", i + 1, echo),
                    )

        # The bid-derived schedule (what an outside observer would compute
        # from the reported values).
        assigned = received_share * alpha_hat * self.total_load
        schedule = self._schedule_from_bids(bids, w_bar, alpha_hat, received_share)

        # ---------------- Phase III: distribution & computation ----------
        with registry.timer("mechanism.phase_3"), perf_span("phase_3"), self._span("phase_3") as phase3_span:
            actual_rates = np.empty(m + 1)
            actual_rates[0] = self.root_rate
            delays = np.zeros(m + 1)
            for i in range(1, m + 1):
                agent = self.agents[i]
                actual_rates[i] = max(agent.choose_execution_rate(), agent.true_rate)
                delays[i] = max(agent.phase3_forward_delay(), 0.0)

            retained, received_actual = self._flows(assigned, received_share)
            network = LinearNetwork(actual_rates, self.z)
            with perf_span("simulate"):
                sim_result = self._simulate(network, retained, delays)
            computed = sim_result.computed
            if self.tracer is not None:
                sim_result.trace.record_to(self.tracer)
            if phase3_span is not None:
                phase3_span.set(makespan=sim_result.makespan)

            # Λ certificates: processor i holds the trailing block range of
            # what actually reached it.
            certificates: dict[int, LoadCertificate] = {}
            for i in range(1, m + 1):
                amount = lambda_device.quantize(received_actual[i])
                first_block = lambda_device.total_blocks - int(round(amount * lambda_device.blocks_per_unit))
                certificates[i] = lambda_device.issue(i, first_block, amount)

            # Meter readings (root-signed).
            meter_msgs: dict[int, SignedMessage] = {}
            for i in range(1, m + 1):
                meter_msgs[i] = meter.record(i, actual_rates[i], float(computed[i]))

            # Overload grievances (honest victims report; Phase III grievances
            # do not abort the run).
            for i in range(1, m + 1) if self.enforcement else ():
                expected = received_share[i] * self.total_load
                if received_actual[i] > expected + _LOAD_TOL and self.agents[i].reports_overload():
                    grievance = Grievance(
                        kind=GrievanceKind.OVERLOAD,
                        accuser=i,
                        accused=i - 1,
                        g_message=g_messages[i],
                        certificate=certificates[i],
                        meter_reading=meter_msgs[i],
                        expected_received=expected,
                    )
                    adjudications.append(self._settle(court.adjudicate(grievance), ledger))

            # Fabricated accusations (deviation (v)).
            for i in range(1, m + 1) if self.enforcement else ():
                agent = self.agents[i]
                kind = agent.fabricates_accusation()
                if kind is not None and received_actual[i] <= received_share[i] * self.total_load + _LOAD_TOL:
                    grievance = Grievance(
                        kind=GrievanceKind.OVERLOAD,
                        accuser=i,
                        accused=i - 1,
                        g_message=g_messages[i],
                        certificate=certificates[i],
                        meter_reading=meter_msgs[i],
                        expected_received=received_share[i] * self.total_load,
                    )
                    adjudications.append(self._settle(court.adjudicate(grievance), ledger))

        # ---------------- Phase IV: payments ------------------------------
        with registry.timer("mechanism.phase_4"), perf_span("phase_4"), self._span("phase_4"):
            # Root reimbursement (eq. 4.3): U_0 = 0 by construction.
            ledger.pay(0, float(assigned[0] * self.root_rate), "root reimbursement")

            auditor = Auditor(self.audit_probability, self.fine, self.rng)
            audits: list[AuditRecord] = []
            correct_q = np.zeros(m + 1)
            billed_q = np.zeros(m + 1)
            for i in range(1, m + 1):
                agent = self.agents[i]
                breakdown = payment_breakdown(
                    proc=i,
                    is_terminal=(i == m),
                    assigned=float(assigned[i]),
                    computed=float(computed[i]),
                    actual_rate=float(actual_rates[i]),
                    own_bid=float(bids[i]),
                    own_w_bar=float(w_bar[i]),
                    own_alpha_hat=float(alpha_hat[i]),
                    predecessor_bid=float(bids[i - 1]),
                    z_link=float(self.z[i - 1]),
                )
                correct_q[i] = breakdown.payment
                bill = agent.phase4_bill(breakdown.payment)
                billed_q[i] = bill
                # Q_j may be negative (a heavily misreporting agent owes the
                # mechanism — the bonus term can exceed the compensation in
                # magnitude); the ledger direction follows the sign.
                if bill >= 0:
                    ledger.pay(i, bill, "phase IV bill")
                else:
                    ledger.fine(i, -bill, "phase IV bill (negative payment)")

                if not self.enforcement:
                    continue
                proof = PaymentProof(
                    proc=i,
                    g_message=g_messages[i],
                    successor_bid=bid_messages.get(i + 1),
                    own_bid=scalar(i, "w", i, float(bids[i])),
                    meter=meter_msgs[i],
                    certificate=certificates[i],
                )
                # The agent forwards its own evidence bundle; tampering
                # here (meter/Λ forgery) is what the audit recomputation
                # is designed to expose.
                proof = agent.phase4_proof(proof)
                record = auditor.audit(
                    i,
                    bill,
                    proof,
                    lambda p: recompute_payment_from_proof(
                        p,
                        registry=self.registry,
                        meter=meter,
                        lambda_device=lambda_device,
                        link_rates=self.z,
                        n_processors=m + 1,
                        total_load=self.total_load,
                    ),
                )
                audits.append(record)
                registry.inc("mechanism.audits")
                if record.challenged:
                    registry.inc("mechanism.audits_challenged")
                if self.tracer is not None:
                    self.tracer.event(
                        "audit",
                        proc=record.proc,
                        challenged=record.challenged,
                        billed=record.billed,
                        recomputed=record.recomputed,
                        proof_valid=record.proof_valid,
                        fine=record.fine,
                        reason=record.reason,
                    )
                if record.fine > 0:
                    ledger.fine(i, record.fine, f"audit penalty (P{i})")
                    registry.inc("mechanism.fines")
                    registry.inc("mechanism.fine_volume", record.fine)
                    if self.tracer is not None:
                        self.tracer.event(
                            "fine",
                            proc=i,
                            amount=record.fine,
                            source="audit",
                            reason=record.reason,
                        )

        reports = self._reports(
            bids, w_bar, actual_rates, assigned, computed, correct_q, billed_q, ledger
        )
        return MechanismOutcome(
            completed=True,
            aborted_phase=None,
            bids=bids,
            w_bar=w_bar,
            schedule=schedule,
            assigned=assigned,
            computed=computed,
            actual_rates=actual_rates,
            sim_result=sim_result,
            adjudications=adjudications,
            audits=audits,
            ledger=ledger,
            reports=reports,
            makespan=sim_result.makespan,
        )

    # ------------------------------------------------------------------

    def _flows(self, assigned: np.ndarray, received_share: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Resolve the actual load flow given each agent's retention policy.

        Returns ``(retained, received_actual)`` in absolute load units.
        The flow is deterministic, so it is resolved up front and handed
        to the discrete-event simulator as a static plan.
        """
        m = self.m
        retained = np.zeros(m + 1)
        received_actual = np.zeros(m + 1)
        received_actual[0] = self.total_load
        retained[0] = assigned[0]  # the root is obedient
        for i in range(1, m + 1):
            received_actual[i] = received_actual[i - 1] - retained[i - 1]
            if i == m:
                retained[i] = received_actual[i]
            else:
                expected_forward = received_share[i + 1] * self.total_load
                choice = self.agents[i].choose_retention(
                    float(assigned[i]), float(received_actual[i]), float(expected_forward)
                )
                retained[i] = float(np.clip(choice, 0.0, received_actual[i]))
        return retained, received_actual

    def _schedule_from_bids(
        self,
        bids: np.ndarray,
        w_bar: np.ndarray,
        alpha_hat: np.ndarray,
        received_share: np.ndarray,
    ) -> LinearSchedule:
        network = LinearNetwork(bids, self.z)
        return LinearSchedule(
            network=network,
            alpha=received_share * alpha_hat,
            alpha_hat=alpha_hat.copy(),
            received=received_share.copy(),
            w_eq=w_bar.copy(),
            makespan=float(w_bar[0]),
        )

    def _settle(self, verdict: Adjudication, ledger: PaymentLedger) -> Adjudication:
        """Apply an adjudication via the court's shared settlement path.

        Delegates to :meth:`GrievanceCourt.apply` so that every verdict —
        including frivolous grievances where the *accuser* is fined —
        produces the same ledger entries, metrics and trace events
        regardless of which caller adjudicated it.
        """
        return self._court.apply(verdict, ledger, tracer=self.tracer)

    def _aborted(
        self,
        phase: int,
        bids: np.ndarray,
        w_bar: np.ndarray,
        adjudications: list[Adjudication],
        ledger: PaymentLedger,
    ) -> MechanismOutcome:
        """An aborted run: nobody computes, utilities are transfer-only
        ("processors not partaking in complaints receive zero utility")."""
        registry = get_registry()
        registry.inc("mechanism.aborts")
        registry.inc(f"mechanism.aborts.phase_{phase}")
        m = self.m
        zeros = np.zeros(m + 1)
        reports = self._reports(bids, w_bar, zeros, zeros, zeros, zeros, zeros, ledger)
        return MechanismOutcome(
            completed=False,
            aborted_phase=phase,
            bids=bids,
            w_bar=w_bar,
            schedule=None,
            assigned=zeros,
            computed=zeros,
            actual_rates=zeros,
            sim_result=None,
            adjudications=adjudications,
            audits=[],
            ledger=ledger,
            reports=reports,
            makespan=None,
        )

    def _reports(
        self,
        bids: np.ndarray,
        w_bar: np.ndarray,
        actual_rates: np.ndarray,
        assigned: np.ndarray,
        computed: np.ndarray,
        correct_q: np.ndarray,
        billed_q: np.ndarray,
        ledger: PaymentLedger,
    ) -> dict[int, AgentReport]:
        reports: dict[int, AgentReport] = {}
        for i in range(1, self.m + 1):
            agent = self.agents[i]
            fines = sum(
                e.amount
                for e in ledger.entries_for(i)
                if e.debtor == i and "bill" not in e.memo
            )
            rewards = sum(
                e.amount
                for e in ledger.entries_for(i)
                if e.creditor == i and "bill" not in e.memo
            )
            valuation = -float(computed[i]) * float(actual_rates[i])
            utility = valuation + ledger.balance(i)
            reports[i] = AgentReport(
                index=i,
                strategy=agent.strategy_name,
                true_rate=agent.true_rate,
                bid=float(bids[i]),
                w_bar=float(w_bar[i]),
                actual_rate=float(actual_rates[i]),
                assigned=float(assigned[i]),
                computed=float(computed[i]),
                valuation=valuation,
                payment_billed=float(billed_q[i]),
                payment_correct=float(correct_q[i]),
                fines=float(fines),
                rewards=float(rewards),
                utility=float(utility),
            )
        return reports
