"""Batched Phase I–IV mechanism engine.

Executes whole *populations* of mechanism runs in stacked numpy passes —
the vectorized counterpart of :class:`~repro.mechanism.dls_lbl.DLSLBLMechanism`
(:func:`run_chain_batch`) and :class:`~repro.mechanism.star_mechanism.StarMechanism`
(:func:`run_star_batch`).  The Monte-Carlo experiments (population runs,
T5.x sweeps, X3, X5) spend their time looping the scalar mechanisms;
this module runs every row of a ``(runs, n)`` rate matrix through bid
collection, the stacked Algorithm-1 solve, verification/metering
comparisons, and Phase IV settlement at once.

**Bitwise contract.**  For protocol-compliant populations (truthful,
misbidding, slow-executing, and overcharging agents — anything that
never triggers a grievance or an abort) every produced quantity —
allocations, payments, fines, audit outcomes, utilities, ledger
aggregates, protocol counters — is bitwise-identical to running the
scalar mechanism row by row.  That requires transcribing the scalar
arithmetic *verbatim*, not just equivalently:

- the mechanism's interior ``alpha_hat`` is the division
  ``w_bar[i] / bids[i]`` (dls_lbl Phase I), which differs in the last
  ulp from the solver's backward-pass ``tail / (w + tail)``;
- the audit recomputation builds its own ``alpha_hat`` with the
  *left-associative* denominator ``own_bid + w_bar_next + z_next``
  (audit.recompute_payment_from_proof), again ulp-different from the
  backward pass;
- the star normalization is a per-row ``math.fsum``, not ``ndarray.sum``
  (dlt.star._alpha_for_order);
- ledger aggregates replay the entry-order float accumulation of
  :class:`~repro.mechanism.ledger.PaymentLedger`.

Audit randomness comes in as a pre-shaped ``(runs, n)`` draw block —
``Generator.random((runs, n))`` consumes the PCG64 stream exactly like
``runs * n`` sequential scalar draws, so callers can hand the engine the
same stream the scalar loop would have used.

**Masked deviant lanes.**  Behaviours the stacked arrays cannot express
(load-shedding, contradictory bids, relay tampering, fabricated
accusations, proof forgery — anything that triggers a grievance, an
abort, or a failed audit proof, plus any traced run) execute on the
*lane engine*: :class:`LaneChainMechanism` / :class:`LaneStarMechanism`
subclass the scalar mechanisms and swap only their infrastructure seams
— HMAC signing becomes the fingerprint stand-in :class:`_PlainSigned`,
the tamper-proof meter a plain recorder, and the event-heap Phase III
simulator a closed-form chain replay.  Every protocol branch (grievance
adjudication, aborts, audit recomputation, settlement, tracing) is the
inherited scalar code operating on identical values, so lane outcomes —
including trace bytes — are bitwise-equal by construction while skipping
the crypto that dominates scalar runtime.  ``run_chain_masked`` routes a
mixed population: conforming lanes ride the stacked arrays, divergent
lanes take the lane engine, and results zip back in lane order.  There
is no scalar fallback; :func:`run_chain_batch` still raises
:class:`~repro.exceptions.ProtocolViolation` if a caller feeds it an
overloading row directly, as an internal-invariant guard.

Metrics: the engine emits the same protocol counters as the scalar runs
(``mechanism.runs``/``star_runs``, ``mechanism.audits``,
``audits_challenged``, ``fines``, ``fine_volume``, ``ledger.transfers``,
``ledger.volume``) with bitwise-identical totals.  Implementation-cost
metrics (``crypto.*`` counters, per-phase timers) have no batched
analogue and are absent; batch solves add their own ``dlt.batch.*``
counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dlt.batch import solve_linear_batch
from repro.exceptions import InvalidNetworkError, ProtocolViolation
from repro.mechanism.audit import BILL_TOL
from repro.mechanism.dls_lbl import DLSLBLMechanism
from repro.mechanism.payments import payment_breakdown_batch
from repro.mechanism.star_mechanism import StarMechanism
from repro.network.topology import LinearNetwork
from repro.obs.metrics import get_registry
from repro.obs.perf import span as perf_span
from repro.protocol.meter import MeterReading, TamperProofMeter
from repro.sim.linear_sim import LinearChainResult
from repro.sim.trace import GanttTrace, Interval

__all__ = [
    "BatchChainOutcome",
    "BatchStarOutcome",
    "LaneChainMechanism",
    "LaneStarMechanism",
    "chain_row_snapshots",
    "run_chain_batch",
    "run_star_batch",
    "star_row_snapshots",
]

#: Mirror of :data:`repro.sim.linear_sim._EPS_LOAD` (sub-threshold loads
#: are neither transmitted nor computed).
_EPS_LOAD = 1e-12

#: Mirror of :data:`repro.mechanism.dls_lbl._LOAD_TOL` (overload slack).
_LOAD_TOL = 1e-7

#: Mirror of :data:`repro.mechanism.star_mechanism._WORK_TOL`.
_WORK_TOL = 1e-9


def _as_matrix(name: str, value, shape: tuple[int, int]) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != shape:
        raise InvalidNetworkError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def _default_fine(w: np.ndarray, total_load: float) -> np.ndarray:
    """Vectorized :func:`~repro.mechanism.payments.recommended_fine` with
    the mechanisms' standard arguments (``margin=2.0``,
    ``max_overcharge=10 * max(true rates)``) — same association order, so
    bitwise-equal per row."""
    mx = w.max(axis=1)
    return 2.0 * (total_load * mx + mx + 10.0 * mx)


def _fine_vector(fine, w: np.ndarray, total_load: float) -> np.ndarray:
    if fine is None:
        return _default_fine(w, total_load)
    arr = np.asarray(fine, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(w.shape[0], float(arr))
    if arr.shape != (w.shape[0],):
        raise InvalidNetworkError(f"fine must be scalar or shape ({w.shape[0]},), got {arr.shape}")
    return arr


def _challenges(audit_draws, q: float, shape: tuple[int, int]) -> np.ndarray:
    """Bernoulli challenge outcomes from a pre-shaped draw block.

    ``None`` means "no audit randomness": nothing is challenged, which
    is the right model for compliant sweeps whose utilities are
    challenge-independent (verified bills are never fined)."""
    if audit_draws is None:
        return np.zeros(shape, dtype=bool)
    draws = np.asarray(audit_draws, dtype=np.float64)
    if draws.shape != shape:
        raise InvalidNetworkError(f"audit_draws must have shape {shape}, got {draws.shape}")
    return draws < q


def _ledger_mirrors(
    root_pay: np.ndarray, billed: np.ndarray, audit_fines: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Replay the per-run ledger arithmetic of the scalar mechanisms.

    Entry order per run is: root reimbursement, then for each agent its
    Phase IV bill followed by its audit fine (if any).  Every aggregate
    accumulates in exactly that order so the floats match the scalar
    :class:`~repro.mechanism.ledger.PaymentLedger` bitwise (``a - b`` is
    IEEE-identical to ``a + (-b)``, which covers the negative-bill
    direction flip).

    Returns ``(balances, fines_total, mechanism_outlay, run_volume,
    n_fine_entries)``.
    """
    n_agents = billed.shape[1]
    abs_bill = np.where(billed >= 0.0, billed, -billed)
    balances = 0.0 + billed
    balances = np.where(audit_fines > 0.0, balances - audit_fines, balances)
    volume = root_pay.copy()
    fines_total = np.zeros_like(root_pay)
    outlay_balance = 0.0 - root_pay
    for i in range(n_agents):
        bill = billed[:, i]
        volume = volume + abs_bill[:, i]
        fines_total = np.where(bill < 0.0, fines_total + (-bill), fines_total)
        outlay_balance = outlay_balance - bill
        f = audit_fines[:, i]
        fined = f > 0.0
        volume = np.where(fined, volume + f, volume)
        fines_total = np.where(fined, fines_total + f, fines_total)
        outlay_balance = np.where(fined, outlay_balance + f, outlay_balance)
    return balances, fines_total, -outlay_balance, volume, int(np.count_nonzero(audit_fines > 0.0))


def _fold(values: np.ndarray) -> float:
    """Left fold in run order — how per-run counter deltas merge."""
    total = 0.0
    for v in values:
        total = total + float(v)
    return total


def _emit_counters(
    registry,
    *,
    runs_counter: str,
    n_runs: int,
    n_audits: int,
    challenged: np.ndarray,
    audit_fines: np.ndarray,
    n_fine_entries: int,
    run_volume: np.ndarray,
) -> None:
    """Emit the scalar mechanisms' protocol counters with identical totals.

    Scalar runs increment once per event; summed over a population the
    counts are exact integers and the float volumes are per-run
    sequential sums folded in run order — replicated here (keys that a
    scalar population would never create stay absent)."""
    registry.inc(runs_counter, n_runs)
    registry.inc("mechanism.audits", n_audits)
    n_challenged = int(np.count_nonzero(challenged))
    if n_challenged:
        registry.inc("mechanism.audits_challenged", n_challenged)
    if n_fine_entries:
        registry.inc("mechanism.fines", n_fine_entries)
        fine_volume = np.zeros(audit_fines.shape[0])
        for i in range(audit_fines.shape[1]):
            f = audit_fines[:, i]
            fine_volume = np.where(f > 0.0, fine_volume + f, fine_volume)
        registry.inc("mechanism.fine_volume", _fold(fine_volume))
    registry.inc("ledger.transfers", n_runs * (1 + audit_fines.shape[1]) + n_fine_entries)
    registry.inc("ledger.volume", _fold(run_volume))


@dataclass(frozen=True)
class BatchChainOutcome:
    """Stacked outcome of ``N`` chain-mechanism runs (row = run).

    Column layout follows the scalar mechanism: full-chain arrays have
    ``m + 1`` columns (root first), per-agent arrays have ``m`` columns
    for processors ``1 .. m``.
    """

    bids: np.ndarray            # (N, m+1) — root column is the obedient root rate
    w_bar: np.ndarray           # (N, m+1) equivalent bids
    alpha_hat: np.ndarray       # (N, m+1) mechanism-faithful local fractions
    received_share: np.ndarray  # (N, m+1) D_i per unit load
    assigned: np.ndarray        # (N, m+1) absolute load units
    retained: np.ndarray        # (N, m+1) Phase III retention plan
    received_actual: np.ndarray  # (N, m+1) what actually flowed
    computed: np.ndarray        # (N, m+1) sim-metered computation
    actual_rates: np.ndarray    # (N, m+1) metered rates (root included)
    arrival_times: np.ndarray   # (N, m+1)
    makespan: np.ndarray        # (N,)
    fine: np.ndarray            # (N,)
    correct_q: np.ndarray       # (N, m) provable Phase IV payments
    billed_q: np.ndarray        # (N, m)
    recomputed_q: np.ndarray    # (N, m) audit-recomputed payments
    challenged: np.ndarray      # (N, m) bool
    audit_fines: np.ndarray     # (N, m) F/q where levied, else 0
    valuations: np.ndarray      # (N, m)
    balances: np.ndarray        # (N, m) per-agent ledger balances
    utilities: np.ndarray       # (N, m)
    fines_total: np.ndarray     # (N,) total credited to the mechanism
    mechanism_outlay: np.ndarray  # (N,)

    @property
    def n_runs(self) -> int:
        return self.bids.shape[0]

    @property
    def n_agents(self) -> int:
        return self.bids.shape[1] - 1

    def utility(self, run: int, index: int) -> float:
        """Utility of processor ``index`` in ``run`` (0 for the root)."""
        if index == 0:
            return 0.0
        return float(self.utilities[run, index - 1])


@dataclass(frozen=True)
class BatchStarOutcome:
    """Stacked outcome of ``N`` star-mechanism runs (row = run)."""

    bids: np.ndarray            # (N, n+1)
    orders: np.ndarray          # (N, n) service order (child indices)
    alpha: np.ndarray           # (N, n+1)
    assigned: np.ndarray        # (N, n+1)
    computed: np.ndarray        # (N, n+1)
    actual_rates: np.ndarray    # (N, n+1)
    makespan: np.ndarray        # (N,)
    fine: np.ndarray            # (N,)
    correct_q: np.ndarray       # (N, n)
    billed_q: np.ndarray        # (N, n)
    recomputed_q: np.ndarray    # (N, n)
    challenged: np.ndarray      # (N, n) bool
    audit_fines: np.ndarray     # (N, n)
    valuations: np.ndarray      # (N, n)
    balances: np.ndarray        # (N, n)
    utilities: np.ndarray       # (N, n)
    fines_total: np.ndarray     # (N,)
    mechanism_outlay: np.ndarray  # (N,)

    @property
    def n_runs(self) -> int:
        return self.bids.shape[0]

    @property
    def n_children(self) -> int:
        return self.bids.shape[1] - 1

    def utility(self, run: int, index: int) -> float:
        if index == 0:
            return 0.0
        return float(self.utilities[run, index - 1])


def run_chain_batch(
    w: np.ndarray,
    z: np.ndarray,
    *,
    bids: np.ndarray | None = None,
    execution_rates: np.ndarray | None = None,
    bill_overcharge: np.ndarray | None = None,
    audit_probability: float = 0.25,
    total_load: float = 1.0,
    fine: float | np.ndarray | None = None,
    audit_draws: np.ndarray | None = None,
    emit_metrics: bool = True,
) -> BatchChainOutcome:
    """Run Phases I–IV of DLS-LBL over ``N`` stacked chains at once.

    Parameters
    ----------
    w:
        True unit processing rates, shape ``(N, m+1)`` — column 0 is the
        obedient root.
    z:
        Link rates, shape ``(N, m)``.
    bids:
        Agent bids, shape ``(N, m)``; defaults to ``w[:, 1:]`` (truthful).
        This is the vectorized bid collection: apply any strategy
        function over the rate matrix and pass the result here.
    execution_rates:
        Chosen execution rates, shape ``(N, m)``; the mechanism meters
        ``max(execution_rate, true_rate)``.  Defaults to truthful.
    bill_overcharge:
        Additive Phase IV bill inflation per agent, shape ``(N, m)``;
        zero models a truthful biller.
    audit_probability / total_load / fine:
        As in the scalar mechanism; ``fine=None`` applies the scalar
        default (:func:`~repro.mechanism.payments.recommended_fine` over
        the true rates) per row.
    audit_draws:
        Pre-shaped uniform draws, shape ``(N, m)`` — one per (run, agent)
        in the order the scalar auditor consumes them.  ``None`` disables
        challenges (compliant-sweep mode).

    Returns
    -------
    BatchChainOutcome — every field bitwise-equal to the scalar runs.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2 or w.shape[1] < 2:
        raise InvalidNetworkError(f"w must be (N, m+1) with m >= 1, got {w.shape}")
    n_runs, m = w.shape[0], w.shape[1] - 1
    z = _as_matrix("z", z, (n_runs, m))
    q = float(audit_probability)
    if not 0.0 < q <= 1.0:
        raise ValueError("audit probability q must be in (0, 1]")
    load = float(total_load)
    fine_arr = _fine_vector(fine, w, load)

    true_rates = w[:, 1:]
    bid_arr = true_rates if bids is None else _as_matrix("bids", bids, (n_runs, m))
    full_bids = np.concatenate((w[:, :1], bid_arr), axis=1)

    registry = get_registry()
    with registry.timer("mechanism.batch_run"), perf_span("mech_batch"):
        # ---- Phase I: stacked Algorithm-1 solve + mechanism-faithful
        # local fractions.  The solver's w_eq IS the scalar w_bar; the
        # interior alpha_hat must be re-derived by the mechanism's
        # division (ulp-different from the solver's backward-pass form).
        with perf_span("phase_1"):
            schedule = solve_linear_batch(full_bids, z)
            w_bar = schedule.w_eq
            alpha_hat = np.empty_like(w_bar)
            alpha_hat[:, m] = 1.0
            if m > 1:
                alpha_hat[:, 1:m] = w_bar[:, 1:m] / full_bids[:, 1:m]
            alpha_hat[:, 0] = schedule.alpha_hat[:, 0]

        # ---- Phase II: the D_i cascade (sequential in the chain axis —
        # each share multiplies the previous one, like the G messages).
        with perf_span("phase_2"):
            received = np.empty_like(w_bar)
            received[:, 0] = 1.0
            received[:, 1] = 1.0 - alpha_hat[:, 0]
            for i in range(1, m):
                received[:, i + 1] = received[:, i] * (1.0 - alpha_hat[:, i])
            assigned = received * alpha_hat * load

        # ---- Phase III: honest retention plan, then the event-driven
        # cascade (store-and-forward with the simulator's load threshold).
        with perf_span("phase_3"):
            exec_arr = (
                true_rates
                if execution_rates is None
                else _as_matrix("execution_rates", execution_rates, (n_runs, m))
            )
            actual = np.maximum(exec_arr, true_rates)
            rates_full = np.concatenate((w[:, :1], actual), axis=1)

            retained = np.zeros_like(w_bar)
            received_actual = np.zeros_like(w_bar)
            received_actual[:, 0] = load
            retained[:, 0] = assigned[:, 0]
            for i in range(1, m + 1):
                received_actual[:, i] = received_actual[:, i - 1] - retained[:, i - 1]
                if i == m:
                    retained[:, i] = received_actual[:, i]
                else:
                    expected_forward = received[:, i + 1] * load
                    choice = np.maximum(received_actual[:, i] - expected_forward, 0.0)
                    retained[:, i] = np.clip(choice, 0.0, received_actual[:, i])

            # Batched metering comparison: any overload would trigger scalar
            # grievance adjudication, which has no vectorized path.
            if np.any(received_actual[:, 1:] > received[:, 1:] * load + _LOAD_TOL):
                raise ProtocolViolation(
                    "batched runs must be grievance-free: a row's actual flow "
                    "exceeds its Phase II expectation"
                )

            computed = np.zeros_like(w_bar)
            arrival = np.zeros_like(w_bar)
            flowing = np.full(n_runs, load)
            now = np.zeros(n_runs)
            alive = np.ones(n_runs, dtype=bool)
            for p in range(m + 1):
                keep = flowing if p == m else np.minimum(retained[:, p], flowing)
                computed[:, p] = np.where(alive & (keep > _EPS_LOAD), keep, 0.0)
                arrival[:, p] = np.where(alive, now, 0.0)
                if p < m:
                    forward = flowing - keep
                    sent = alive & (forward > _EPS_LOAD)
                    now = np.where(sent, now + forward * z[:, p], 0.0)
                    flowing = np.where(sent, forward, 0.0)
                    alive = sent
            ends = np.where(computed > 0.0, arrival + computed * rates_full, 0.0)
            makespan = ends.max(axis=1)

        # ---- Phase IV: provable payments from the mechanism's own
        # arrays, then the audit recomputation with the proof-side
        # alpha_hat (left-associative denominator, verbatim).
        with perf_span("phase_4"):
            correct_bd = payment_breakdown_batch(
                schedule,
                computed=computed[:, 1:],
                actual_rates=actual,
                assigned=assigned[:, 1:],
                alpha_hat=alpha_hat[:, 1:],
            )
            correct_q = correct_bd.payment
            if bill_overcharge is None:
                billed = correct_q
            else:
                over = _as_matrix("bill_overcharge", bill_overcharge, (n_runs, m))
                billed = np.where(over != 0.0, correct_q + over, correct_q)

            audit_alpha_hat = np.empty((n_runs, m))
            audit_alpha_hat[:, m - 1] = 1.0
            audit_w_bar = np.empty((n_runs, m))
            audit_w_bar[:, m - 1] = full_bids[:, m]
            if m > 1:
                w_bar_next = w_bar[:, 2:]
                z_next = z[:, 1:]
                own_bid = full_bids[:, 1:m]
                hat = (w_bar_next + z_next) / (own_bid + w_bar_next + z_next)
                audit_alpha_hat[:, : m - 1] = hat
                audit_w_bar[:, : m - 1] = hat * own_bid
            audit_assigned = received[:, 1:] * audit_alpha_hat * load
            recomputed_q = payment_breakdown_batch(
                schedule,
                computed=computed[:, 1:],
                actual_rates=actual,
                assigned=audit_assigned,
                alpha_hat=audit_alpha_hat,
                w_bar=audit_w_bar,
            ).payment

            challenged = _challenges(audit_draws, q, (n_runs, m))
            audit_fines = np.where(
                challenged & (billed > recomputed_q + BILL_TOL),
                fine_arr[:, None] / q,
                0.0,
            )

            root_pay = assigned[:, 0] * w[:, 0]
            balances, fines_total, outlay, run_volume, n_fine_entries = _ledger_mirrors(
                root_pay, billed, audit_fines
            )
            valuations = -computed[:, 1:] * actual
            utilities = valuations + balances

            if emit_metrics:
                _emit_counters(
                    registry,
                    runs_counter="mechanism.runs",
                    n_runs=n_runs,
                    n_audits=n_runs * m,
                    challenged=challenged,
                    audit_fines=audit_fines,
                    n_fine_entries=n_fine_entries,
                    run_volume=run_volume,
                )

    return BatchChainOutcome(
        bids=full_bids,
        w_bar=w_bar,
        alpha_hat=alpha_hat,
        received_share=received,
        assigned=assigned,
        retained=retained,
        received_actual=received_actual,
        computed=computed,
        actual_rates=rates_full,
        arrival_times=arrival,
        makespan=makespan,
        fine=fine_arr,
        correct_q=correct_q,
        billed_q=billed,
        recomputed_q=recomputed_q,
        challenged=challenged,
        audit_fines=audit_fines,
        valuations=valuations,
        balances=balances,
        utilities=utilities,
        fines_total=fines_total,
        mechanism_outlay=outlay,
    )


def _star_alpha_batch(w: np.ndarray, z: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Per-row equal-finish star allocation, bitwise-equal to
    :func:`~repro.dlt.star._alpha_for_order`.

    Identical to :func:`~repro.dlt.star.star_alpha_kernel` except for the
    normalization, which must be a per-row ``math.fsum`` to match the
    scalar solver (``ndarray.sum`` pairs differently for n >= 8)."""
    served_w = np.take_along_axis(w, cols, axis=1)
    prev_w = np.concatenate((w[:, :1], served_w[:, :-1]), axis=1)
    denom = np.take_along_axis(z, cols - 1, axis=1) + served_w
    ratios = np.cumprod(prev_w / denom, axis=1)
    alpha = np.empty_like(w)
    alpha0 = np.empty(w.shape[0])
    for r in range(w.shape[0]):
        alpha0[r] = 1.0 / (1.0 + math.fsum(ratios[r]))
    alpha[:, 0] = alpha0
    np.put_along_axis(alpha, cols, alpha0[:, None] * ratios, axis=1)
    return alpha


def run_star_batch(
    w: np.ndarray,
    z: np.ndarray,
    *,
    bids: np.ndarray | None = None,
    execution_rates: np.ndarray | None = None,
    bill_overcharge: np.ndarray | None = None,
    audit_probability: float = 0.25,
    total_load: float = 1.0,
    fine: float | np.ndarray | None = None,
    audit_draws: np.ndarray | None = None,
    emit_metrics: bool = True,
) -> BatchStarOutcome:
    """Run the star/bus mechanism over ``N`` stacked stars at once.

    Same contract and parameter layout as :func:`run_chain_batch` with
    ``n`` children per row.  The batchable behaviours are bids, slow
    execution, and bill overcharges; every such row completes its full
    assignment, so the meter's abandoned-work check is identically
    satisfied and the audit recomputation (from the root's own records)
    reproduces the provable payment exactly.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2 or w.shape[1] < 2:
        raise InvalidNetworkError(f"w must be (N, n+1) with n >= 1, got {w.shape}")
    n_runs, n = w.shape[0], w.shape[1] - 1
    z = _as_matrix("z", z, (n_runs, n))
    q = float(audit_probability)
    if not 0.0 < q <= 1.0:
        raise ValueError("audit probability q must be in (0, 1]")
    load = float(total_load)
    fine_arr = _fine_vector(fine, w, load)

    true_rates = w[:, 1:]
    bid_arr = true_rates if bids is None else _as_matrix("bids", bids, (n_runs, n))
    full_bids = np.concatenate((w[:, :1], bid_arr), axis=1)

    registry = get_registry()
    with registry.timer("mechanism.star_batch_run"), perf_span("mech_batch_star"):
        # Service order: non-decreasing link time, stable per row — the
        # public bid-independent optimum the scalar mechanism uses.
        orders = np.argsort(z, axis=1, kind="stable") + 1
        alpha = _star_alpha_batch(full_bids, z, orders)
        assigned = alpha * load

        exec_arr = (
            true_rates
            if execution_rates is None
            else _as_matrix("execution_rates", execution_rates, (n_runs, n))
        )
        actual = np.maximum(exec_arr, true_rates)
        rates_full = np.concatenate((w[:, :1], actual), axis=1)
        # Batchable children complete their whole assignment: the scalar
        # clip(max(assigned - 0, 0), 0, assigned) is the identity here,
        # and the meter's abandoned-work comparison never fires.
        computed = assigned.copy()

        # Marginal-contribution bonus, one reduced solve per child:
        # T(w_{-i}) minus the bid-derived allocation re-timed at the
        # child's actual rate.
        alpha_served = np.take_along_axis(alpha, orders, axis=1)
        z_served = np.take_along_axis(z, orders - 1, axis=1)
        clock = np.cumsum(alpha_served * z_served, axis=1)
        t_served_bid = clock + alpha_served * np.take_along_axis(full_bids, orders, axis=1)
        t_root = alpha[:, 0] * full_bids[:, 0]

        t_without = np.empty((n_runs, n))
        t_eval = np.empty((n_runs, n))
        for child in range(1, n + 1):
            if n == 1:
                t_without[:, 0] = full_bids[:, 0]
            else:
                keep_cols = [c for c in range(1, n + 1) if c != child]
                w_red = np.concatenate((full_bids[:, :1], full_bids[:, keep_cols]), axis=1)
                z_red = z[:, [c - 1 for c in keep_cols]]
                orders_red = np.argsort(z_red, axis=1, kind="stable") + 1
                alpha_red = _star_alpha_batch(w_red, z_red, orders_red)
                t_without[:, child - 1] = alpha_red[:, 0] * w_red[:, 0]
            slot = orders == child
            t_child = clock + alpha[:, child : child + 1] * actual[:, child - 1 : child]
            t_eval[:, child - 1] = np.maximum(
                t_root, np.where(slot, t_child, t_served_bid).max(axis=1)
            )
        bonus = t_without - t_eval
        correct_q = assigned[:, 1:] * actual + bonus
        if bill_overcharge is None:
            billed = correct_q
        else:
            over = _as_matrix("bill_overcharge", bill_overcharge, (n_runs, n))
            billed = np.where(over != 0.0, correct_q + over, correct_q)
        # The root recomputes from its own records with the very same
        # expression and inputs, so the recomputed payment IS correct_q.
        recomputed_q = correct_q

        challenged = _challenges(audit_draws, q, (n_runs, n))
        audit_fines = np.where(
            challenged & (billed > recomputed_q + BILL_TOL),
            fine_arr[:, None] / q,
            0.0,
        )

        t_served_actual = clock + alpha_served * np.take_along_axis(rates_full, orders, axis=1)
        t_root_actual = alpha[:, 0] * rates_full[:, 0]
        makespan = np.maximum(t_root_actual, t_served_actual.max(axis=1)) * load

        root_pay = assigned[:, 0] * w[:, 0]
        balances, fines_total, outlay, run_volume, n_fine_entries = _ledger_mirrors(
            root_pay, billed, audit_fines
        )
        valuations = -computed[:, 1:] * actual
        utilities = valuations + balances

        if emit_metrics:
            _emit_counters(
                registry,
                runs_counter="mechanism.star_runs",
                n_runs=n_runs,
                n_audits=n_runs * n,
                challenged=challenged,
                audit_fines=audit_fines,
                n_fine_entries=n_fine_entries,
                run_volume=run_volume,
            )

    return BatchStarOutcome(
        bids=full_bids,
        orders=orders,
        alpha=alpha,
        assigned=assigned,
        computed=computed,
        actual_rates=rates_full,
        makespan=makespan,
        fine=fine_arr,
        correct_q=correct_q,
        billed_q=billed,
        recomputed_q=recomputed_q,
        challenged=challenged,
        audit_fines=audit_fines,
        valuations=valuations,
        balances=balances,
        utilities=utilities,
        fines_total=fines_total,
        mechanism_outlay=outlay,
    )


# ---------------------------------------------------------------------------
# Masked deviant lanes
#
# The scalar mechanisms reach every piece of environment machinery — the
# PKI, message signing, the tamper-proof meter, the Phase III simulator —
# through overridable seams.  The lane engine subclasses swap those seams
# for crypto-free stand-ins, so a lane whose agents shed load, contradict
# themselves, tamper with proofs, or accuse falsely runs the *inherited*
# protocol code (grievances, aborts, audits, settlement, tracing) on
# identical values, bitwise-equal to the scalar run but without the HMAC
# signing/verification and event-heap costs that dominate its runtime.
# ---------------------------------------------------------------------------


def _lane_fingerprint(payload: Any) -> tuple:
    """A cheap canonical form of a message payload.

    Protocol payloads are flat ``str -> int/float/str`` dicts, so the
    sorted item tuple is a faithful stand-in for the scalar path's
    canonical-bytes digest: equal payloads fingerprint equal, and digests
    are only ever compared for equality."""
    if isinstance(payload, dict):
        return tuple(sorted(payload.items()))
    return (repr(payload),)


@dataclass(frozen=True)
class _PlainSigned:
    """Stand-in for :class:`~repro.crypto.signing.SignedMessage`.

    Same ``signer``/``payload`` surface, but the HMAC signature is
    replaced by a payload fingerprint taken at construction time.
    ``verify`` recomputes the fingerprint, so a payload swapped in via
    ``dataclasses.replace`` (how the fault injector tampers with meter
    readings) carries the stale fingerprint and fails verification —
    exactly when the real signature would.  The ``registry`` argument is
    accepted and ignored, keeping every duck-typed consumer (G-message
    verification, the grievance court, the audit recomputation)
    unchanged."""

    signer: int
    payload: Any
    fingerprint: tuple | None = None

    def __post_init__(self) -> None:
        if self.fingerprint is None:
            object.__setattr__(self, "fingerprint", _lane_fingerprint(self.payload))

    def verify(self, registry) -> bool:
        return self.fingerprint == _lane_fingerprint(self.payload)

    def content_digest(self) -> tuple:
        return self.fingerprint


class _LaneMeter:
    """Duck-typed :class:`~repro.protocol.meter.TamperProofMeter` storing
    plain readings and emitting fingerprint-signed messages."""

    def __init__(self) -> None:
        self._readings: dict[int, MeterReading] = {}

    def record(self, proc: int, actual_rate: float, computed_amount: float) -> _PlainSigned:
        reading = MeterReading(
            proc=proc,
            actual_rate=float(actual_rate),
            computed_amount=float(computed_amount),
        )
        self._readings[proc] = reading
        return _PlainSigned(signer=0, payload=reading.as_payload())

    def reading_for(self, proc: int) -> MeterReading | None:
        return self._readings.get(proc)

    parse = staticmethod(TamperProofMeter.parse)


def _replay_chain(
    network: LinearNetwork,
    retained: np.ndarray,
    total_load: float,
    delays: np.ndarray,
) -> LinearChainResult:
    """Closed-form replay of :func:`~repro.sim.linear_sim.simulate_linear_chain`.

    The chain cascade is strictly sequential — the arrival at ``i + 1``
    is a pure function of the arrival at ``i`` — so the event heap adds
    nothing but overhead.  Every float operation keeps the simulator's
    association order (arrivals advance by ``now + (delay + duration)``),
    so times, interval bounds, and the recorded trace are
    bitwise-identical to the event-driven run."""
    n = network.size
    w = network.w
    z = network.z
    retained_arr = np.asarray(retained, dtype=np.float64)
    use_delays = bool(np.any(delays > 0.0))
    trace = GanttTrace()
    received = np.zeros(n)
    computed = np.zeros(n)
    arrival = np.zeros(n)
    now = 0.0
    load = float(total_load)
    proc = 0
    while True:
        received[proc] = load
        arrival[proc] = now
        keep = load if proc == n - 1 else min(retained_arr[proc], load)
        forward = load - keep
        if keep > _EPS_LOAD:
            computed[proc] = keep
            duration = keep * w[proc]
            trace.add(Interval("compute", proc, now, now + duration, keep))
        if proc < n - 1 and forward > _EPS_LOAD:
            duration = forward * z[proc]
            delay = delays[proc] if use_delays else 0.0
            start = now + delay
            trace.add(Interval("send", proc, start, start + duration, forward, peer=proc + 1))
            trace.add(Interval("recv", proc + 1, start, start + duration, forward, peer=proc))
            now = now + (delay + duration)
            load = forward
            proc += 1
        else:
            break
    return LinearChainResult(
        trace=trace,
        received=received,
        computed=computed,
        arrival_times=arrival,
        finish_times=trace.finish_times(n),
        makespan=trace.makespan,
    )


class LaneChainMechanism(DLSLBLMechanism):
    """A divergent batch lane on the chain: the full scalar protocol with
    the infrastructure seams swapped for batch-native stand-ins.

    Covers everything the stacked arrays cannot express — grievances
    (shedding, contradictory bids, relay tampering, false accusations),
    aborts, proof forgery, and traced runs — with outcomes, counters and
    trace bytes bitwise-equal to :class:`DLSLBLMechanism`."""

    def _make_crypto(self, key_seed: bytes | None) -> None:
        self._keys = None
        return None

    def _sign(self, signer: int, payload: dict) -> _PlainSigned:
        return _PlainSigned(signer, payload)

    def _make_meter(self) -> _LaneMeter:
        return _LaneMeter()

    def _simulate(
        self, network: LinearNetwork, retained: np.ndarray, delays: np.ndarray
    ) -> LinearChainResult:
        return _replay_chain(network, retained, self.total_load, delays)


class LaneStarMechanism(StarMechanism):
    """A divergent batch lane on the star — :class:`StarMechanism` with
    the crypto seams swapped, bitwise-equal outcomes."""

    def _make_crypto(self, key_seed: bytes | None) -> None:
        self._keys = None
        return None

    def _sign(self, signer: int, payload: dict) -> _PlainSigned:
        return _PlainSigned(signer, payload)

    def _make_meter(self) -> _LaneMeter:
        return _LaneMeter()


def chain_row_snapshots(outcome: BatchChainOutcome) -> list[dict[str, Any]]:
    """Per-row protocol-counter snapshots for a stacked chain outcome.

    The masked router merges counters in *lane order* — interleaving
    array lanes with lane-engine runs — so the float accumulation order
    matches a scalar loop exactly.  That requires the stacked pass's
    counters at per-row granularity: each snapshot holds what one scalar
    run would have contributed, with the same left-fold entry order
    (root reimbursement, then per agent its bill and audit fine)."""
    return _row_snapshots(outcome, "mechanism.runs")


def star_row_snapshots(outcome: BatchStarOutcome) -> list[dict[str, Any]]:
    """Per-row protocol-counter snapshots for a stacked star outcome.

    Same contract as :func:`chain_row_snapshots` with the star run
    counter (``mechanism.star_runs``); the scalar star's ledger entry
    order for batchable rows is identical (root reimbursement, then per
    child its bill and audit fine)."""
    return _row_snapshots(outcome, "mechanism.star_runs")


def _row_snapshots(
    outcome: BatchChainOutcome | BatchStarOutcome, runs_counter: str
) -> list[dict[str, Any]]:
    m = outcome.bids.shape[1] - 1
    snapshots: list[dict[str, Any]] = []
    for k in range(outcome.bids.shape[0]):
        counters: dict[str, float] = {
            runs_counter: 1.0,
            "mechanism.audits": float(m),
        }
        n_challenged = int(np.count_nonzero(outcome.challenged[k]))
        if n_challenged:
            counters["mechanism.audits_challenged"] = float(n_challenged)
        row_fines = outcome.audit_fines[k]
        n_fines = int(np.count_nonzero(row_fines > 0.0))
        if n_fines:
            counters["mechanism.fines"] = float(n_fines)
            fine_volume = 0.0
            for f in row_fines:
                if f > 0.0:
                    fine_volume = fine_volume + float(f)
            counters["mechanism.fine_volume"] = fine_volume
        volume = float(outcome.assigned[k, 0]) * float(outcome.bids[k, 0])
        for i in range(m):
            volume = volume + abs(float(outcome.billed_q[k, i]))
            f = float(row_fines[i])
            if f > 0.0:
                volume = volume + f
        counters["ledger.transfers"] = float(1 + m + n_fines)
        counters["ledger.volume"] = volume
        snapshots.append({"counters": counters})
    return snapshots
