"""Empirical checkers for the paper's theorems.

The paper proves its properties analytically; this module *measures*
them on concrete instances, which is how the test suite and the
benchmark harness validate the implementation:

- :func:`utility_of_bid` / :func:`sweep_bids` — Lemma 5.3 / Theorem 5.3:
  for any network and any opponent bids, an agent's utility is maximized
  at the truthful bid (and at full-speed execution).
- :func:`check_voluntary_participation` — Lemma 5.4 / Theorem 5.4:
  truthful agents never end with negative utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.agents.base import ProcessorAgent
from repro.agents.strategies import TruthfulAgent
from repro.mechanism.dls_lbl import DLSLBLMechanism, MechanismOutcome

__all__ = [
    "FixedBehaviourAgent",
    "StrategyproofnessReport",
    "utility_of_bid",
    "sweep_bids",
    "sweep_bids_batch",
    "truthful_utilities_batch",
    "check_voluntary_participation",
    "run_truthful",
]


class FixedBehaviourAgent(ProcessorAgent):
    """An agent with an explicitly pinned bid and execution rate — the
    probe used by the strategyproofness sweeps."""

    strategy_name = "fixed"

    def __init__(self, index: int, true_rate: float, *, bid: float, execution_rate: float | None = None) -> None:
        super().__init__(index, true_rate)
        self.bid = float(bid)
        self.execution_rate = float(execution_rate) if execution_rate is not None else true_rate

    def choose_bid(self) -> float:
        return self.bid

    def choose_execution_rate(self) -> float:
        return self.execution_rate


def _build_mechanism(
    link_rates: Sequence[float],
    root_rate: float,
    true_rates: Sequence[float],
    *,
    agents: dict[int, ProcessorAgent] | None = None,
    seed: int = 0,
    audit_probability: float = 1.0,
) -> DLSLBLMechanism:
    """Mechanism over truthful agents, with optional per-index overrides."""
    overrides = agents or {}
    roster: list[ProcessorAgent] = []
    for i, t in enumerate(true_rates, start=1):
        roster.append(overrides.get(i, TruthfulAgent(i, float(t))))
    return DLSLBLMechanism(
        link_rates,
        root_rate,
        roster,
        audit_probability=audit_probability,
        rng=np.random.default_rng(seed),
    )


def run_truthful(
    link_rates: Sequence[float],
    root_rate: float,
    true_rates: Sequence[float],
    *,
    seed: int = 0,
) -> MechanismOutcome:
    """Run the mechanism with every agent truthful."""
    return _build_mechanism(link_rates, root_rate, true_rates, seed=seed).run()


def utility_of_bid(
    link_rates: Sequence[float],
    root_rate: float,
    true_rates: Sequence[float],
    agent_index: int,
    bid: float,
    *,
    execution_rate: float | None = None,
    seed: int = 0,
) -> float:
    """Utility of ``agent_index`` when it bids ``bid`` (and optionally
    runs at ``execution_rate``) while everyone else is truthful.

    This is the quantity Lemma 5.3 analyses; strategyproofness means it
    peaks at ``bid == true_rates[agent_index - 1]`` with
    ``execution_rate`` at capacity.
    """
    probe = FixedBehaviourAgent(
        agent_index,
        float(true_rates[agent_index - 1]),
        bid=bid,
        execution_rate=execution_rate,
    )
    mech = _build_mechanism(
        link_rates, root_rate, true_rates, agents={agent_index: probe}, seed=seed
    )
    outcome = mech.run()
    return outcome.utility(agent_index)


@dataclass(frozen=True)
class StrategyproofnessReport:
    """Result of a bid sweep for one agent."""

    agent_index: int
    true_rate: float
    bids: np.ndarray
    utilities: np.ndarray
    truthful_utility: float

    @property
    def best_bid(self) -> float:
        return float(self.bids[int(np.argmax(self.utilities))])

    @property
    def max_deviant_utility(self) -> float:
        return float(self.utilities.max())

    @property
    def truthful_is_optimal(self) -> bool:
        """Whether no swept bid beats truth-telling (up to float slack)."""
        slack = 1e-9 * max(1.0, abs(self.truthful_utility))
        return bool(self.utilities.max() <= self.truthful_utility + slack)

    @property
    def advantage_of_lying(self) -> float:
        """max over bids of (utility - truthful utility); <= 0 when
        strategyproof."""
        return float(self.utilities.max() - self.truthful_utility)


def sweep_bids(
    link_rates: Sequence[float],
    root_rate: float,
    true_rates: Sequence[float],
    agent_index: int,
    *,
    factors: Sequence[float] | None = None,
    execution_rate: float | None = None,
    seed: int = 0,
) -> StrategyproofnessReport:
    """Sweep an agent's bid over ``factors * true_rate`` and record the
    utilities (everyone else truthful)."""
    true_rate = float(true_rates[agent_index - 1])
    if factors is None:
        factors = np.concatenate(
            (np.linspace(0.1, 1.0, 19), np.linspace(1.0, 5.0, 21)[1:])
        )
    bids = np.asarray(factors, dtype=np.float64) * true_rate
    utilities = np.array(
        [
            utility_of_bid(
                link_rates,
                root_rate,
                true_rates,
                agent_index,
                float(b),
                execution_rate=execution_rate,
                seed=seed,
            )
            for b in bids
        ]
    )
    truthful = utility_of_bid(
        link_rates, root_rate, true_rates, agent_index, true_rate, seed=seed
    )
    return StrategyproofnessReport(
        agent_index=agent_index,
        true_rate=true_rate,
        bids=bids,
        utilities=utilities,
        truthful_utility=truthful,
    )


def _batch_utilities(
    w: np.ndarray,
    z: np.ndarray,
    *,
    bids: np.ndarray | None = None,
    execution_rates: np.ndarray | None = None,
) -> np.ndarray:
    """Per-agent mechanism utilities of ``N`` stacked compliant runs.

    Runs the batched Phase I–IV engine
    (:func:`~repro.mechanism.batch_run.run_chain_batch`) with no audit
    challenges: a compliant probe bills the correct amount, is never
    fined even when challenged, and its utility is exactly
    ``V_j + Q_j`` — bitwise what :func:`run_truthful` /
    :func:`utility_of_bid` measure through the scalar protocol.  ``w``
    carries *true* rates (root in column 0); bid and execution-rate
    deviations go in the ``(N, m)`` override matrices.  Shape ``(N, m)``;
    differential tests pin it against the mechanism runs.
    """
    from repro.mechanism.batch_run import run_chain_batch

    outcome = run_chain_batch(
        w,
        z,
        bids=bids,
        execution_rates=execution_rates,
        audit_draws=None,
        emit_metrics=False,
    )
    return outcome.utilities


def truthful_utilities_batch(
    link_rates: Sequence[float],
    root_rate: float,
    true_rates: Sequence[float],
) -> dict[int, float]:
    """All-truthful utilities via the batched engine (one stacked run).

    Equals ``{i: run_truthful(...).utility(i)}`` bitwise — the
    all-truthful run levies no fines, so utility is exactly eq. 4.4's
    ``V_j + Q_j``.
    """
    true = np.asarray(true_rates, dtype=np.float64)
    w = np.concatenate(([float(root_rate)], true))[None, :]
    z = np.asarray(link_rates, dtype=np.float64)[None, :]
    utilities = _batch_utilities(w, z)[0]
    return {i: float(utilities[i - 1]) for i in range(1, true.size + 1)}


def sweep_bids_batch(
    link_rates: Sequence[float],
    root_rate: float,
    true_rates: Sequence[float],
    agent_index: int,
    *,
    factors: Sequence[float] | None = None,
    execution_rate: float | None = None,
    seed: int = 0,
) -> StrategyproofnessReport:
    """Vectorized :func:`sweep_bids`: one batched engine pass per grid.

    Stacks one run per swept bid (plus a truthful row) and executes all
    of them through the batched Phase I–IV engine.  Valid because the
    probe stays protocol-compliant — a misreported bid or a slow
    execution changes payments, never draws a fine — so the engine's
    utilities are bitwise the scalar mechanism's.  ``seed`` is accepted
    for signature parity with :func:`sweep_bids`; the compliant path
    consumes no randomness.
    """
    del seed
    true = np.asarray(true_rates, dtype=np.float64)
    m = true.size
    true_rate = float(true[agent_index - 1])
    if factors is None:
        factors = np.concatenate(
            (np.linspace(0.1, 1.0, 19), np.linspace(1.0, 5.0, 21)[1:])
        )
    bids = np.asarray(factors, dtype=np.float64) * true_rate
    n = bids.size
    # Row layout: one run per swept bid, the truthful reference last
    # (truthful bid at capacity, regardless of the probe's slowdown).
    w = np.empty((n + 1, m + 1))
    w[:, 0] = float(root_rate)
    w[:, 1:] = true
    bid_matrix = np.tile(true, (n + 1, 1))
    bid_matrix[:n, agent_index - 1] = bids
    z = np.tile(np.asarray(link_rates, dtype=np.float64), (n + 1, 1))
    # The engine meters max(execution_rate, capacity) exactly like the
    # scalar Phase III; everyone else runs at capacity.
    rates = None
    if execution_rate is not None:
        rates = np.tile(true, (n + 1, 1))
        rates[:n, agent_index - 1] = float(execution_rate)
    utilities = _batch_utilities(w, z, bids=bid_matrix, execution_rates=rates)[
        :, agent_index - 1
    ]
    return StrategyproofnessReport(
        agent_index=agent_index,
        true_rate=true_rate,
        bids=bids,
        utilities=utilities[:n].copy(),
        truthful_utility=float(utilities[n]),
    )


def check_voluntary_participation(outcome: MechanismOutcome, *, tol: float = 1e-9) -> bool:
    """Theorem 5.4 on a concrete outcome: every *truthful* agent's
    utility is non-negative."""
    for report in outcome.reports.values():
        if report.strategy == "truthful" and report.utility < -tol:
            return False
    return True
