"""Phase IV payment structure (paper eqs. 4.3–4.11).

For a strategic processor :math:`P_j` (:math:`j \\ge 1`) the utility is

.. math::

    U_j = V_j(\\tilde\\alpha_j, \\tilde w_j) + Q_j
    \\qquad\\text{(4.4)}

with the valuation :math:`V_j = -\\tilde\\alpha_j \\tilde w_j` (4.5) —
the cost of the work actually performed — and the payment

.. math::

    Q_j = \\begin{cases} 0 & \\tilde\\alpha_j = 0 \\\\
          C_j + B_j & \\tilde\\alpha_j > 0 \\end{cases}
    \\qquad\\text{(4.6)}

where :math:`C_j = \\alpha_j\\tilde w_j + E_j` is the *compensation* (4.7),
:math:`E_j` the *recompense* for overload work (4.8), and the *bonus*

.. math::

    B_j = w_{j-1} - \\bar w_{j-1}\\big(\\alpha((w_{j-1},\\bar w_j)),
        (w_{j-1}, \\hat w_j)\\big)
    \\qquad\\text{(4.9)}

is the predecessor's bid minus the *evaluated* equivalent processing time
of the two-processor system :math:`\\{P_{j-1}, \\text{equiv } P_j\\}`:
the allocation is fixed from the bids, and the segment's makespan per
unit load is re-evaluated at :math:`P_j`'s *actual* performance
:math:`\\hat w_j` (4.10/4.11).  At a truthful bid and full-speed
execution the two branches of the max coincide and the bonus is largest
— that is the engine of strategyproofness (Lemma 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dlt imports nothing from mechanism)
    from repro.dlt.batch import BatchLinearSchedule

__all__ = [
    "valuation",
    "recompense",
    "compensation",
    "adjusted_equivalent_time",
    "bonus",
    "PaymentBreakdown",
    "payment_breakdown",
    "BatchPaymentBreakdown",
    "payment_breakdown_batch",
    "recommended_fine",
]


def valuation(computed_amount: float, actual_rate: float) -> float:
    """Valuation :math:`V_j = -\\tilde\\alpha_j \\tilde w_j` (eq. 4.5)."""
    return -computed_amount * actual_rate


def recompense(assigned: float, computed_amount: float, actual_rate: float) -> float:
    """Recompense :math:`E_j` (eq. 4.8): pay for overload work only.

    Zero when the processor computed less than assigned (it is *not*
    excused — compensation still covers the full assignment, and Phase III
    grievances handle the shortfall).
    """
    if computed_amount >= assigned:
        return (computed_amount - assigned) * actual_rate
    return 0.0


def compensation(assigned: float, computed_amount: float, actual_rate: float) -> float:
    """Compensation :math:`C_j = \\alpha_j \\tilde w_j + E_j` (eq. 4.7)."""
    return assigned * actual_rate + recompense(assigned, computed_amount, actual_rate)


def adjusted_equivalent_time(
    *,
    is_terminal: bool,
    bid: float,
    w_bar: float,
    alpha_hat: float,
    actual_rate: float,
) -> float:
    """The adjusted equivalent bid :math:`\\hat w_j` (eqs. 4.10/4.11).

    Parameters
    ----------
    is_terminal:
        ``True`` for :math:`P_m` (eq. 4.10: :math:`\\hat w_m = \\tilde w_m`).
    bid:
        The raw bid :math:`w_j`.
    w_bar:
        The Phase I equivalent bid :math:`\\bar w_j = \\hat\\alpha_j w_j`.
    alpha_hat:
        The Phase I local fraction :math:`\\hat\\alpha_j`.
    actual_rate:
        The metered actual unit time :math:`\\tilde w_j \\ge t_j`.

    Notes
    -----
    When :math:`P_j` runs no slower than it bid
    (:math:`\\tilde w_j < w_j`), the segment's equivalent time is
    unchanged (:math:`\\hat w_j = \\bar w_j`): running *faster* than bid
    earns nothing, so there is no reason to overbid and sandbag.  When it
    runs slower, its actual speed dominates the segment
    (:math:`\\hat w_j = \\hat\\alpha_j \\tilde w_j`), shrinking the bonus.
    """
    if is_terminal:
        return actual_rate
    if actual_rate >= bid:
        return alpha_hat * actual_rate
    return w_bar


def bonus(
    *,
    predecessor_bid: float,
    z_link: float,
    w_bar: float,
    w_hat: float,
) -> float:
    """The bonus :math:`B_j` (eq. 4.9).

    The two-processor system :math:`\\{P_{j-1}, \\text{equiv } P_j\\}` is
    allocated from the *bids* — local fraction

    .. math::

        \\hat\\alpha_{j-1} = \\frac{\\bar w_j + z_j}
                                  {w_{j-1} + \\bar w_j + z_j}

    — and its equivalent time is then *evaluated* at :math:`P_j`'s actual
    performance :math:`\\hat w_j` via eq. 2.3 (the max of the two
    finishing times, since the allocation is no longer optimal for the
    actual rates):

    .. math::

        \\bar w_{j-1}^{\\text{eval}} = \\max\\big(
            \\hat\\alpha_{j-1} w_{j-1},\\;
            (1-\\hat\\alpha_{j-1})(z_j + \\hat w_j)\\big).

    ``B_j = predecessor_bid - w_eval``; maximal exactly when the two
    branches coincide, i.e. when :math:`\\hat w_j` equals the bid-derived
    :math:`\\bar w_j` — truth-telling at full speed.
    """
    alpha_hat_prev = (w_bar + z_link) / (predecessor_bid + w_bar + z_link)
    w_eval = max(
        alpha_hat_prev * predecessor_bid,
        (1.0 - alpha_hat_prev) * (z_link + w_hat),
    )
    return predecessor_bid - w_eval


@dataclass(frozen=True)
class PaymentBreakdown:
    """Every term of one processor's Phase IV payment."""

    proc: int
    assigned: float  # alpha_j (load units, from the bid-derived schedule)
    computed: float  # alpha~_j actually computed
    actual_rate: float  # w~_j
    valuation: float  # V_j (4.5)
    compensation: float  # C_j (4.7), includes recompense
    recompense: float  # E_j (4.8)
    bonus: float  # B_j (4.9)
    payment: float  # Q_j (4.6)

    @property
    def utility_before_transfers(self) -> float:
        """``V_j + Q_j`` (eq. 4.4) — before grievance fines/rewards."""
        return self.valuation + self.payment


def payment_breakdown(
    *,
    proc: int,
    is_terminal: bool,
    assigned: float,
    computed: float,
    actual_rate: float,
    own_bid: float,
    own_w_bar: float,
    own_alpha_hat: float,
    predecessor_bid: float,
    z_link: float,
) -> PaymentBreakdown:
    """Assemble the full payment :math:`Q_j` for one processor.

    This is the computation each :math:`P_j` performs for itself in
    Phase IV (and that the root re-performs during audits).
    """
    v = valuation(computed, actual_rate)
    if computed <= 0.0:
        return PaymentBreakdown(
            proc=proc,
            assigned=assigned,
            computed=computed,
            actual_rate=actual_rate,
            valuation=v,
            compensation=0.0,
            recompense=0.0,
            bonus=0.0,
            payment=0.0,
        )
    e = recompense(assigned, computed, actual_rate)
    c = assigned * actual_rate + e
    w_hat = adjusted_equivalent_time(
        is_terminal=is_terminal,
        bid=own_bid,
        w_bar=own_w_bar,
        alpha_hat=own_alpha_hat,
        actual_rate=actual_rate,
    )
    b = bonus(
        predecessor_bid=predecessor_bid,
        z_link=z_link,
        w_bar=own_w_bar,
        w_hat=w_hat,
    )
    return PaymentBreakdown(
        proc=proc,
        assigned=assigned,
        computed=computed,
        actual_rate=actual_rate,
        valuation=v,
        compensation=c,
        recompense=e,
        bonus=b,
        payment=c + b,
    )


@dataclass(frozen=True)
class BatchPaymentBreakdown:
    """Phase IV payment terms for the ``m`` strategic agents of ``N``
    stacked networks; every field is an ``(N, m)`` array whose column
    ``j-1`` is agent :math:`P_j`'s term (same semantics as the scalar
    :class:`PaymentBreakdown` fields)."""

    assigned: np.ndarray
    computed: np.ndarray
    actual_rate: np.ndarray
    valuation: np.ndarray
    compensation: np.ndarray
    recompense: np.ndarray
    bonus: np.ndarray
    payment: np.ndarray

    @property
    def utility_before_transfers(self) -> np.ndarray:
        """``V_j + Q_j`` (eq. 4.4) — before grievance fines/rewards."""
        return self.valuation + self.payment


def payment_breakdown_batch(
    schedule: "BatchLinearSchedule",
    *,
    computed: np.ndarray | None = None,
    actual_rates: np.ndarray | None = None,
    assigned: np.ndarray | None = None,
    alpha_hat: np.ndarray | None = None,
    w_bar: np.ndarray | None = None,
) -> BatchPaymentBreakdown:
    """Assemble the Phase IV payments for every agent of every stacked
    network at once — the batch counterpart of :func:`payment_breakdown`.

    Parameters
    ----------
    schedule:
        A :class:`~repro.dlt.batch.BatchLinearSchedule` solved from the
        *bids* (``schedule.w[:, 1:]`` are the agent bids, ``w[:, 0]`` the
        obedient root).
    computed:
        Amounts actually computed, shape ``(N, m)``; defaults to the
        assigned fractions (obedient execution).
    actual_rates:
        Metered actual unit times :math:`\\tilde w_j`, shape ``(N, m)``;
        defaults to the bids (truthful full-speed execution).
    assigned / alpha_hat / w_bar:
        Optional ``(N, m)`` overrides for the schedule-derived arrays.
        The batched mechanism engine passes its protocol-faithful Phase II
        quantities here (the mechanism derives interior ``alpha_hat`` by a
        division the solver never performs, and the audit recompute uses
        its own left-associative ``alpha_hat`` expression) so the batch
        settlement stays bitwise-equal to the scalar path.

    The elementwise formulas are exactly eqs. 4.5–4.11; column ``m-1`` is
    the terminal processor (eq. 4.10), every other column uses eq. 4.11.
    Differential tests pin this against the scalar path to 1e-9.
    """
    bids = schedule.w[:, 1:]
    z = schedule.z
    assigned = np.asarray(assigned, dtype=np.float64) if assigned is not None else schedule.alpha[:, 1:]
    alpha_hat = np.asarray(alpha_hat, dtype=np.float64) if alpha_hat is not None else schedule.alpha_hat[:, 1:]
    w_bar = np.asarray(w_bar, dtype=np.float64) if w_bar is not None else schedule.w_eq[:, 1:]
    computed_arr = np.asarray(computed, dtype=np.float64) if computed is not None else assigned
    rates = np.asarray(actual_rates, dtype=np.float64) if actual_rates is not None else bids
    if computed_arr.shape != assigned.shape or rates.shape != assigned.shape:
        raise ValueError(
            f"computed/actual_rates must have shape {assigned.shape}, "
            f"got {computed_arr.shape} and {rates.shape}"
        )

    v = -computed_arr * rates  # eq. 4.5
    e = np.where(computed_arr >= assigned, (computed_arr - assigned) * rates, 0.0)  # eq. 4.8
    c = assigned * rates + e  # eq. 4.7
    # Adjusted equivalent bid w_hat (eqs. 4.10/4.11): terminal column uses
    # the actual rate verbatim; interior columns keep w_bar unless the
    # processor ran slower than it bid.
    w_hat = np.where(rates >= bids, alpha_hat * rates, w_bar)
    w_hat[:, -1] = rates[:, -1]
    # Bonus (eq. 4.9): two-processor system {P_{j-1}, equiv P_j} allocated
    # from the bids, evaluated at the actual performance.
    predecessor_bid = schedule.w[:, :-1]
    alpha_hat_prev = (w_bar + z) / (predecessor_bid + w_bar + z)
    w_eval = np.maximum(
        alpha_hat_prev * predecessor_bid,
        (1.0 - alpha_hat_prev) * (z + w_hat),
    )
    b = predecessor_bid - w_eval
    participating = computed_arr > 0.0  # eq. 4.6: Q_j = 0 for alpha~_j = 0
    zero = np.zeros_like(assigned)
    return BatchPaymentBreakdown(
        assigned=assigned,
        computed=computed_arr,
        actual_rate=rates,
        valuation=v,
        compensation=np.where(participating, c, zero),
        recompense=np.where(participating, e, zero),
        bonus=np.where(participating, b, zero),
        payment=np.where(participating, c + b, zero),
    )


def recommended_fine(
    bids: np.ndarray,
    *,
    total_load: float = 1.0,
    margin: float = 2.0,
    max_overcharge: float = 0.0,
) -> float:
    """A fine ``F`` "larger than any potential profits attainable by
    cheating" (paper, Phase I).

    Cheating profits are bounded by the largest payment any processor can
    extract: compensation is at most ``total_load * max(w)`` (computing
    the whole load at the slowest rate), the bonus is at most the largest
    predecessor bid, and a load-shedder pockets at most its own full
    compensation.  ``max_overcharge`` must bound any bill inflation the
    environment admits (the payment infrastructure rejects bills above
    the recomputable maximum plus this allowance).
    """
    if margin <= 0.0:
        raise ValueError(f"margin must be positive, got {margin}")
    bids_arr = np.asarray(bids, dtype=np.float64)
    if bids_arr.size == 0:
        raise ValueError("bids must be non-empty")
    bound = float(total_load * bids_arr.max() + bids_arr.max() + max_overcharge)
    return margin * bound
