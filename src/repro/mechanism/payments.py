"""Phase IV payment structure (paper eqs. 4.3–4.11).

For a strategic processor :math:`P_j` (:math:`j \\ge 1`) the utility is

.. math::

    U_j = V_j(\\tilde\\alpha_j, \\tilde w_j) + Q_j
    \\qquad\\text{(4.4)}

with the valuation :math:`V_j = -\\tilde\\alpha_j \\tilde w_j` (4.5) —
the cost of the work actually performed — and the payment

.. math::

    Q_j = \\begin{cases} 0 & \\tilde\\alpha_j = 0 \\\\
          C_j + B_j & \\tilde\\alpha_j > 0 \\end{cases}
    \\qquad\\text{(4.6)}

where :math:`C_j = \\alpha_j\\tilde w_j + E_j` is the *compensation* (4.7),
:math:`E_j` the *recompense* for overload work (4.8), and the *bonus*

.. math::

    B_j = w_{j-1} - \\bar w_{j-1}\\big(\\alpha((w_{j-1},\\bar w_j)),
        (w_{j-1}, \\hat w_j)\\big)
    \\qquad\\text{(4.9)}

is the predecessor's bid minus the *evaluated* equivalent processing time
of the two-processor system :math:`\\{P_{j-1}, \\text{equiv } P_j\\}`:
the allocation is fixed from the bids, and the segment's makespan per
unit load is re-evaluated at :math:`P_j`'s *actual* performance
:math:`\\hat w_j` (4.10/4.11).  At a truthful bid and full-speed
execution the two branches of the max coincide and the bonus is largest
— that is the engine of strategyproofness (Lemma 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "valuation",
    "recompense",
    "compensation",
    "adjusted_equivalent_time",
    "bonus",
    "PaymentBreakdown",
    "payment_breakdown",
    "recommended_fine",
]


def valuation(computed_amount: float, actual_rate: float) -> float:
    """Valuation :math:`V_j = -\\tilde\\alpha_j \\tilde w_j` (eq. 4.5)."""
    return -computed_amount * actual_rate


def recompense(assigned: float, computed_amount: float, actual_rate: float) -> float:
    """Recompense :math:`E_j` (eq. 4.8): pay for overload work only.

    Zero when the processor computed less than assigned (it is *not*
    excused — compensation still covers the full assignment, and Phase III
    grievances handle the shortfall).
    """
    if computed_amount >= assigned:
        return (computed_amount - assigned) * actual_rate
    return 0.0


def compensation(assigned: float, computed_amount: float, actual_rate: float) -> float:
    """Compensation :math:`C_j = \\alpha_j \\tilde w_j + E_j` (eq. 4.7)."""
    return assigned * actual_rate + recompense(assigned, computed_amount, actual_rate)


def adjusted_equivalent_time(
    *,
    is_terminal: bool,
    bid: float,
    w_bar: float,
    alpha_hat: float,
    actual_rate: float,
) -> float:
    """The adjusted equivalent bid :math:`\\hat w_j` (eqs. 4.10/4.11).

    Parameters
    ----------
    is_terminal:
        ``True`` for :math:`P_m` (eq. 4.10: :math:`\\hat w_m = \\tilde w_m`).
    bid:
        The raw bid :math:`w_j`.
    w_bar:
        The Phase I equivalent bid :math:`\\bar w_j = \\hat\\alpha_j w_j`.
    alpha_hat:
        The Phase I local fraction :math:`\\hat\\alpha_j`.
    actual_rate:
        The metered actual unit time :math:`\\tilde w_j \\ge t_j`.

    Notes
    -----
    When :math:`P_j` runs no slower than it bid
    (:math:`\\tilde w_j < w_j`), the segment's equivalent time is
    unchanged (:math:`\\hat w_j = \\bar w_j`): running *faster* than bid
    earns nothing, so there is no reason to overbid and sandbag.  When it
    runs slower, its actual speed dominates the segment
    (:math:`\\hat w_j = \\hat\\alpha_j \\tilde w_j`), shrinking the bonus.
    """
    if is_terminal:
        return actual_rate
    if actual_rate >= bid:
        return alpha_hat * actual_rate
    return w_bar


def bonus(
    *,
    predecessor_bid: float,
    z_link: float,
    w_bar: float,
    w_hat: float,
) -> float:
    """The bonus :math:`B_j` (eq. 4.9).

    The two-processor system :math:`\\{P_{j-1}, \\text{equiv } P_j\\}` is
    allocated from the *bids* — local fraction

    .. math::

        \\hat\\alpha_{j-1} = \\frac{\\bar w_j + z_j}
                                  {w_{j-1} + \\bar w_j + z_j}

    — and its equivalent time is then *evaluated* at :math:`P_j`'s actual
    performance :math:`\\hat w_j` via eq. 2.3 (the max of the two
    finishing times, since the allocation is no longer optimal for the
    actual rates):

    .. math::

        \\bar w_{j-1}^{\\text{eval}} = \\max\\big(
            \\hat\\alpha_{j-1} w_{j-1},\\;
            (1-\\hat\\alpha_{j-1})(z_j + \\hat w_j)\\big).

    ``B_j = predecessor_bid - w_eval``; maximal exactly when the two
    branches coincide, i.e. when :math:`\\hat w_j` equals the bid-derived
    :math:`\\bar w_j` — truth-telling at full speed.
    """
    alpha_hat_prev = (w_bar + z_link) / (predecessor_bid + w_bar + z_link)
    w_eval = max(
        alpha_hat_prev * predecessor_bid,
        (1.0 - alpha_hat_prev) * (z_link + w_hat),
    )
    return predecessor_bid - w_eval


@dataclass(frozen=True)
class PaymentBreakdown:
    """Every term of one processor's Phase IV payment."""

    proc: int
    assigned: float  # alpha_j (load units, from the bid-derived schedule)
    computed: float  # alpha~_j actually computed
    actual_rate: float  # w~_j
    valuation: float  # V_j (4.5)
    compensation: float  # C_j (4.7), includes recompense
    recompense: float  # E_j (4.8)
    bonus: float  # B_j (4.9)
    payment: float  # Q_j (4.6)

    @property
    def utility_before_transfers(self) -> float:
        """``V_j + Q_j`` (eq. 4.4) — before grievance fines/rewards."""
        return self.valuation + self.payment


def payment_breakdown(
    *,
    proc: int,
    is_terminal: bool,
    assigned: float,
    computed: float,
    actual_rate: float,
    own_bid: float,
    own_w_bar: float,
    own_alpha_hat: float,
    predecessor_bid: float,
    z_link: float,
) -> PaymentBreakdown:
    """Assemble the full payment :math:`Q_j` for one processor.

    This is the computation each :math:`P_j` performs for itself in
    Phase IV (and that the root re-performs during audits).
    """
    v = valuation(computed, actual_rate)
    if computed <= 0.0:
        return PaymentBreakdown(
            proc=proc,
            assigned=assigned,
            computed=computed,
            actual_rate=actual_rate,
            valuation=v,
            compensation=0.0,
            recompense=0.0,
            bonus=0.0,
            payment=0.0,
        )
    e = recompense(assigned, computed, actual_rate)
    c = assigned * actual_rate + e
    w_hat = adjusted_equivalent_time(
        is_terminal=is_terminal,
        bid=own_bid,
        w_bar=own_w_bar,
        alpha_hat=own_alpha_hat,
        actual_rate=actual_rate,
    )
    b = bonus(
        predecessor_bid=predecessor_bid,
        z_link=z_link,
        w_bar=own_w_bar,
        w_hat=w_hat,
    )
    return PaymentBreakdown(
        proc=proc,
        assigned=assigned,
        computed=computed,
        actual_rate=actual_rate,
        valuation=v,
        compensation=c,
        recompense=e,
        bonus=b,
        payment=c + b,
    )


def recommended_fine(
    bids: np.ndarray,
    *,
    total_load: float = 1.0,
    margin: float = 2.0,
    max_overcharge: float = 0.0,
) -> float:
    """A fine ``F`` "larger than any potential profits attainable by
    cheating" (paper, Phase I).

    Cheating profits are bounded by the largest payment any processor can
    extract: compensation is at most ``total_load * max(w)`` (computing
    the whole load at the slowest rate), the bonus is at most the largest
    predecessor bid, and a load-shedder pockets at most its own full
    compensation.  ``max_overcharge`` must bound any bill inflation the
    environment admits (the payment infrastructure rejects bills above
    the recomputable maximum plus this allowance).
    """
    bids_arr = np.asarray(bids, dtype=np.float64)
    bound = float(total_load * bids_arr.max() + bids_arr.max() + max_overcharge)
    return margin * bound
