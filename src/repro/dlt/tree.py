"""Optimal divisible-load schedule for rooted tree networks.

Generalizes the reduction of Fig. 3 to trees (the architecture of the
authors' prior tree mechanism [9]): each subtree collapses bottom-up into
an equivalent processor, every internal node then faces a *star* problem
over its (collapsed) children, and the star's per-unit-load makespan is
the subtree's equivalent processing time.  Unrolling the star fractions
top-down yields the global allocation.

A unary tree reduces to the linear boundary problem; tests assert the two
solvers agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlt.allocation import TreeSchedule
from repro.dlt.star import solve_star
from repro.network.topology import StarNetwork, TreeNetwork, TreeNode

__all__ = ["solve_tree", "tree_equivalent_time"]


@dataclass
class _Collapsed:
    """A collapsed subtree: equivalent rate plus the recipe to unroll a
    load fraction into per-node allocations."""

    node: TreeNode
    w_eq: float
    own_fraction: float
    children: list[tuple[float, "_Collapsed"]]  # (fraction, collapsed child)


def _collapse(node: TreeNode) -> _Collapsed:
    if not node.children:
        return _Collapsed(node=node, w_eq=node.w, own_fraction=1.0, children=[])
    collapsed_children = [_collapse(child) for child in node.children]
    # Build the star: this node computes, children are the collapsed
    # subtrees hanging off their parent links, served one-port.
    w = np.array([node.w] + [c.w_eq for c in collapsed_children])
    z = np.array([c.node.link for c in collapsed_children], dtype=np.float64)
    star = solve_star(StarNetwork(w, z))
    # star.alpha is indexed root-first then children 1..k (original child
    # positions, independent of service order).
    fractions = star.alpha
    return _Collapsed(
        node=node,
        w_eq=star.makespan,
        own_fraction=float(fractions[0]),
        children=[(float(fractions[i + 1]), collapsed_children[i]) for i in range(len(collapsed_children))],
    )


def _unroll(collapsed: _Collapsed, load: float, alphas: list[float], labels: list[str | None]) -> None:
    alphas.append(load * collapsed.own_fraction)
    labels.append(collapsed.node.label)
    for fraction, child in collapsed.children:
        _unroll(child, load * fraction, alphas, labels)


def solve_tree(network: TreeNetwork) -> TreeSchedule:
    """Solve the tree divisible-load problem for a unit load.

    Returns a :class:`~repro.dlt.allocation.TreeSchedule` with fractions
    in preorder (root first).
    """
    collapsed = _collapse(network.root)
    alphas: list[float] = []
    labels: list[str | None] = []
    _unroll(collapsed, 1.0, alphas, labels)
    return TreeSchedule(
        network=network,
        alpha=np.array(alphas),
        labels=tuple(labels),
        w_eq_root=collapsed.w_eq,
        makespan=collapsed.w_eq,
    )


def tree_equivalent_time(network: TreeNetwork) -> float:
    """Equivalent processing time of the fully collapsed tree."""
    return _collapse(network.root).w_eq
