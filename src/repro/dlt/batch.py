"""Vectorized batch solving: N networks in one numpy pass.

The experiment suite's dominant cost is solving many *independent*
divisible-load instances — bid sweeps, Monte-Carlo workloads, scaling
studies (cf. Gallet, Robert & Vivien's multi-load linear-network
scheduling, arXiv:0706.4038).  Solving them one at a time through the
scalar recurrences wastes the fact that the backward pass is sequential
only along the *chain*: across instances every step is elementwise.  This
module stacks ``w``/``z`` into ``(N, m+1)`` / ``(N, m)`` arrays and runs
the Algorithm 1 and star recurrences for all ``N`` instances at once via
the array kernels exposed by :mod:`repro.dlt.linear` and
:mod:`repro.dlt.star`.

The batched kernels perform the same IEEE-754 operations per element as
the scalar solvers, so results agree bitwise with
:func:`~repro.dlt.linear.solve_linear_boundary` /
:func:`~repro.dlt.star.solve_star` (differential-tested to 1e-9 and in
practice exactly).

A small LRU cache (:func:`solve_linear_cached`) keyed on canonicalized
network parameters serves repeated instances — bid sweeps re-solve the
same chain with one entry perturbed, and workload replays hit identical
networks — without the caller having to manage identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.dlt.allocation import LinearSchedule, StarSchedule
from repro.dlt.linear import alpha_from_alpha_hat, backward_pass, solve_linear_boundary
from repro.dlt.star import star_alpha_kernel
from repro.exceptions import InvalidNetworkError
from repro.network.topology import BusNetwork, LinearNetwork, StarNetwork
from repro.obs.metrics import get_registry
from repro.obs.perf import span as perf_span

__all__ = [
    "BatchLinearSchedule",
    "BatchStarSchedule",
    "stack_networks",
    "solve_linear_batch",
    "solve_star_batch",
    "solve_many",
    "solve_linear_cached",
    "linear_cache_info",
    "linear_cache_clear",
    "record_cache_metrics",
]


def _validate_stack(w: np.ndarray, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    w_arr = np.ascontiguousarray(w, dtype=np.float64)
    z_arr = np.ascontiguousarray(z, dtype=np.float64)
    if w_arr.ndim != 2:
        raise InvalidNetworkError(f"stacked w must be 2-D (N, m+1), got shape {w_arr.shape}")
    if w_arr.shape[1] < 1 or w_arr.shape[0] < 1:
        raise InvalidNetworkError(f"stacked w must be non-empty, got shape {w_arr.shape}")
    if z_arr.ndim != 2 or z_arr.shape != (w_arr.shape[0], w_arr.shape[1] - 1):
        raise InvalidNetworkError(
            f"stacked z must have shape {(w_arr.shape[0], w_arr.shape[1] - 1)}, got {z_arr.shape}"
        )
    if not (np.all(np.isfinite(w_arr)) and np.all(np.isfinite(z_arr))):
        raise InvalidNetworkError("stacked rates must be finite")
    if np.any(w_arr <= 0.0) or (z_arr.size and np.any(z_arr <= 0.0)):
        raise InvalidNetworkError("stacked rates must be strictly positive")
    return w_arr, z_arr


@dataclass(frozen=True)
class BatchLinearSchedule:
    """Optimal schedules for ``N`` stacked boundary-rooted linear networks.

    Every array is stacked along axis 0; row ``i`` holds exactly what the
    scalar :class:`~repro.dlt.allocation.LinearSchedule` would hold for
    network ``i``.

    Attributes
    ----------
    w, z:
        The stacked network parameters, shapes ``(N, m+1)`` and ``(N, m)``.
    alpha, alpha_hat, received, w_eq:
        Stacked schedule quantities, shape ``(N, m+1)``.
    makespan:
        Per-instance makespans, shape ``(N,)``.
    """

    w: np.ndarray
    z: np.ndarray
    alpha: np.ndarray
    alpha_hat: np.ndarray
    received: np.ndarray
    w_eq: np.ndarray
    makespan: np.ndarray

    @property
    def n_networks(self) -> int:
        return int(self.w.shape[0])

    @property
    def size(self) -> int:
        """Processors per instance (``m + 1``)."""
        return int(self.w.shape[1])

    def __len__(self) -> int:
        return self.n_networks

    def schedule(self, i: int, *, network: LinearNetwork | None = None) -> LinearSchedule:
        """Row ``i`` unstacked into a scalar :class:`LinearSchedule`."""
        net = network if network is not None else LinearNetwork(self.w[i], self.z[i])
        return LinearSchedule(
            network=net,
            alpha=self.alpha[i],
            alpha_hat=self.alpha_hat[i],
            received=self.received[i],
            w_eq=self.w_eq[i],
            makespan=float(self.makespan[i]),
        )


@dataclass(frozen=True)
class BatchStarSchedule:
    """Optimal schedules for ``N`` stacked star networks.

    Attributes
    ----------
    w, z:
        Stacked parameters, shapes ``(N, n+1)`` and ``(N, n)``.
    alpha:
        Stacked allocations (root first), shape ``(N, n+1)``.
    orders:
        Per-instance service orders (child indices ``1..n``), ``(N, n)``.
    makespan:
        Per-instance makespans, shape ``(N,)``.
    """

    w: np.ndarray
    z: np.ndarray
    alpha: np.ndarray
    orders: np.ndarray
    makespan: np.ndarray

    @property
    def n_networks(self) -> int:
        return int(self.w.shape[0])

    def __len__(self) -> int:
        return self.n_networks

    def schedule(self, i: int, *, network: StarNetwork | None = None) -> StarSchedule:
        """Row ``i`` unstacked into a scalar :class:`StarSchedule`."""
        net = network if network is not None else StarNetwork(self.w[i], self.z[i])
        return StarSchedule(
            network=net,
            alpha=self.alpha[i],
            order=tuple(int(c) for c in self.orders[i]),
            makespan=float(self.makespan[i]),
        )


def stack_networks(
    networks: Sequence[LinearNetwork | StarNetwork],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack same-size networks into ``(w, z)`` arrays for the batch kernels.

    Raises :class:`InvalidNetworkError` when the sequence is empty or the
    sizes disagree (batching requires a rectangular stack; group by size
    first — :func:`solve_many` does exactly that).
    """
    nets = list(networks)
    if not nets:
        raise InvalidNetworkError("cannot stack an empty network sequence")
    size = nets[0].size
    if any(net.size != size for net in nets):
        raise InvalidNetworkError("all stacked networks must have the same size")
    w = np.stack([net.w for net in nets])
    z = (
        np.stack([net.z for net in nets])
        if size > 1
        else np.empty((len(nets), 0), dtype=np.float64)
    )
    return w, z


def solve_linear_batch(w: np.ndarray, z: np.ndarray) -> BatchLinearSchedule:
    """Solve Algorithm 1 for ``N`` stacked chains at once.

    Parameters
    ----------
    w:
        Stacked processing times, shape ``(N, m+1)``.
    z:
        Stacked link times, shape ``(N, m)``.

    Examples
    --------
    >>> batch = solve_linear_batch([[2.0, 2.0], [2.0, 2.0]], [[1.0], [1.0]])
    >>> [float(round(t, 4)) for t in batch.makespan]
    [1.2, 1.2]
    """
    w_arr, z_arr = _validate_stack(np.atleast_2d(w), np.atleast_2d(np.asarray(z, dtype=np.float64)))
    registry = get_registry()
    registry.inc("dlt.batch.linear_calls")
    registry.inc("dlt.batch.linear_instances", w_arr.shape[0])
    with registry.timer("dlt.batch.linear"), perf_span("solve.batch_linear"):
        alpha_hat, w_eq = backward_pass(w_arr, z_arr)
        alpha, received = alpha_from_alpha_hat(alpha_hat)
    return BatchLinearSchedule(
        w=w_arr,
        z=z_arr,
        alpha=alpha,
        alpha_hat=alpha_hat,
        received=received,
        w_eq=w_eq,
        makespan=w_eq[:, 0].copy(),
    )


def solve_star_batch(
    w: np.ndarray, z: np.ndarray, *, orders: np.ndarray | None = None
) -> BatchStarSchedule:
    """Solve the star problem for ``N`` stacked instances at once.

    Parameters
    ----------
    w:
        Stacked processing times (root first), shape ``(N, n+1)``.
    z:
        Stacked child-link times, shape ``(N, n)``.
    orders:
        Optional per-instance service orders (child indices ``1..n``),
        shape ``(N, n)``.  Defaults to the optimal non-decreasing-link
        order, computed per row exactly as :func:`~repro.dlt.star.solve_star`
        does (stable argsort).
    """
    w_arr, z_arr = _validate_stack(np.atleast_2d(w), np.atleast_2d(np.asarray(z, dtype=np.float64)))
    if w_arr.shape[1] < 2:
        raise InvalidNetworkError("a star batch needs at least one child per instance")
    if orders is None:
        cols = np.argsort(z_arr, axis=-1, kind="stable") + 1
    else:
        cols = np.asarray(orders, dtype=np.intp)
        if cols.shape != z_arr.shape:
            raise InvalidNetworkError(
                f"orders must have shape {z_arr.shape}, got {cols.shape}"
            )
        if not np.array_equal(np.sort(cols, axis=-1), np.arange(1, w_arr.shape[1])[None, :].repeat(len(cols), 0)):
            raise InvalidNetworkError("each order row must be a permutation of 1..n")
    registry = get_registry()
    registry.inc("dlt.batch.star_calls")
    registry.inc("dlt.batch.star_instances", w_arr.shape[0])
    with registry.timer("dlt.batch.star"), perf_span("solve.batch_star"):
        alpha = star_alpha_kernel(w_arr, z_arr, cols)
    return BatchStarSchedule(
        w=w_arr,
        z=z_arr,
        alpha=alpha,
        orders=cols,
        makespan=alpha[:, 0] * w_arr[:, 0],
    )


def solve_many(
    networks: Iterable[LinearNetwork | StarNetwork | BusNetwork],
) -> list[LinearSchedule | StarSchedule]:
    """Solve a heterogeneous collection of networks, batching where possible.

    Groups instances by architecture and size, runs one batched solve per
    group, and returns scalar schedules in the input order — a drop-in
    replacement for ``[solve(net) for net in networks]`` on linear, star
    and bus networks.
    """
    nets = list(networks)
    groups: dict[tuple[str, int], list[int]] = {}
    stars: dict[int, StarNetwork] = {}
    for idx, net in enumerate(nets):
        if isinstance(net, LinearNetwork):
            groups.setdefault(("linear", net.size), []).append(idx)
        elif isinstance(net, (StarNetwork, BusNetwork)):
            stars[idx] = net.as_star() if isinstance(net, BusNetwork) else net
            groups.setdefault(("star", stars[idx].size), []).append(idx)
        else:
            raise TypeError(f"solve_many cannot batch {type(net).__name__}")
    out: list[LinearSchedule | StarSchedule | None] = [None] * len(nets)
    for (kind, _size), indices in groups.items():
        if kind == "linear":
            w, z = stack_networks([nets[i] for i in indices])
            batch = solve_linear_batch(w, z)
            for row, i in enumerate(indices):
                out[i] = batch.schedule(row, network=nets[i])
        else:
            w, z = stack_networks([stars[i] for i in indices])
            batch = solve_star_batch(w, z)
            for row, i in enumerate(indices):
                out[i] = batch.schedule(row, network=stars[i])
    return out  # type: ignore[return-value]


@lru_cache(maxsize=4096)
def _solve_linear_from_key(w_bytes: bytes, z_bytes: bytes) -> LinearSchedule:
    w = np.frombuffer(w_bytes, dtype=np.float64)
    z = np.frombuffer(z_bytes, dtype=np.float64)
    return solve_linear_boundary(LinearNetwork(w, z))


def solve_linear_cached(network: LinearNetwork) -> LinearSchedule:
    """LRU-cached Algorithm 1 solve.

    The key is the canonicalized parameter vector (float64 bytes of
    ``w`` and ``z``), so structurally identical networks hit the cache
    regardless of object identity.  Note the returned schedule's
    ``network`` is the cached reconstruction, not the argument object.
    """
    return _solve_linear_from_key(network.w.tobytes(), network.z.tobytes())


def linear_cache_info():
    """``functools.lru_cache`` statistics for :func:`solve_linear_cached`."""
    return _solve_linear_from_key.cache_info()


def linear_cache_clear() -> None:
    """Drop all cached :func:`solve_linear_cached` entries."""
    _solve_linear_from_key.cache_clear()


def record_cache_metrics() -> None:
    """Publish :func:`solve_linear_cached` statistics as registry gauges.

    ``functools.lru_cache`` keeps its own counters; this copies them into
    the active registry (``cache.solve_linear.hits`` / ``.misses`` /
    ``.size`` / ``.maxsize``) so they land in metrics snapshots and the
    ``trace summarize`` report.  Gauges use replace-on-merge semantics, so
    call this at the end of the work whose cache behaviour you want
    recorded (each worker process has its own cache and its own numbers).
    """
    info = linear_cache_info()
    registry = get_registry()
    registry.set_gauge("cache.solve_linear.hits", info.hits)
    registry.set_gauge("cache.solve_linear.misses", info.misses)
    registry.set_gauge("cache.solve_linear.size", info.currsize)
    registry.set_gauge("cache.solve_linear.maxsize", info.maxsize)
