"""Optimal divisible-load schedule for bus networks.

A bus network is a star whose links all share the bus communication time
``z`` (the setting of the authors' prior bus mechanism [14]).  With equal
links the service order does not affect the makespan (tested), so the bus
solver simply delegates to the star solver in index order.
"""

from __future__ import annotations

from repro.dlt.allocation import StarSchedule
from repro.dlt.star import solve_star
from repro.network.topology import BusNetwork

__all__ = ["solve_bus"]


def solve_bus(network: BusNetwork) -> StarSchedule:
    """Solve the bus divisible-load problem for a unit load.

    Returns a :class:`~repro.dlt.allocation.StarSchedule` over the
    equivalent star; children are served in index order.
    """
    star = network.as_star()
    return solve_star(star, order=tuple(range(1, star.size)))
