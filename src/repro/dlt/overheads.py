"""Overhead models for auditing the paper's idealizing assumptions.

Section 2 assumes: (i) negligible communication startup time, (ii)
negligible protocol-message passing time, (iii) negligible result-return
time.  These helpers put numbers behind each assumption so experiment A3
can chart *when* the linear model stays accurate.

All three corrections have closed forms on the chain:

- **Startup (i)**: each of the ``m`` link transmissions pays a fixed
  ``startup`` before data flows, and the delays accumulate along the
  relay path: processor ``j``'s arrival shifts by ``j * startup``, so
  the makespan under the *unchanged* allocation grows by at most
  ``m * startup`` (exact per-processor times below).
- **Messages (ii)**: Phase I walks the chain up (m hops) and Phase II
  walks it down (m hops) before any load moves, so a per-message latency
  ``lam`` delays the start of Phase III by ``2 m lam``; audits add a
  round trip per challenged bill.
- **Results (iii)**: when each processor must return results of size
  ``delta * alpha_j``, the reverse pipeline carries
  ``delta * sum_{j >= k} alpha_j = delta * D_k`` over link ``k`` —
  exactly ``delta`` times the forward communication — so the return
  phase adds ``delta * sum_k D_k z_k`` after the last finish.
"""

from __future__ import annotations

import numpy as np

from repro.dlt.timing import received_loads
from repro.network.topology import LinearNetwork

__all__ = [
    "finishing_times_with_startup",
    "protocol_latency_overhead",
    "return_phase_duration",
]


def finishing_times_with_startup(
    network: LinearNetwork, alpha: np.ndarray, startup: float
) -> np.ndarray:
    """Finishing times when every link transmission pays a fixed
    ``startup`` before data flows (relaxing assumption (i)).

    The allocation is held fixed (what the unmodified Algorithm 1 would
    prescribe), so the result shows the *model error*, not a re-optimized
    schedule: ``T_j = sum_{k<=j} (startup + D_k z_k) + alpha_j w_j``.
    """
    if startup < 0:
        raise ValueError("startup must be non-negative")
    arr = np.asarray(alpha, dtype=np.float64)
    d = received_loads(arr)
    t = np.empty_like(arr)
    t[0] = arr[0] * network.w[0]
    if arr.size > 1:
        comm = np.cumsum(startup + d[1:] * network.z)
        t[1:] = comm + arr[1:] * network.w[1:]
        t[1:][arr[1:] == 0.0] = 0.0
    return t


def protocol_latency_overhead(m: int, message_latency: float, *, audited: int = 0) -> float:
    """Wall-clock the four-phase protocol adds before/after the schedule
    when each protocol message takes ``message_latency`` (relaxing
    assumption (ii)).

    Phase I: ``m`` sequential bid hops toward the root.  Phase II: ``m``
    sequential ``G`` hops away from it.  Phase IV: one challenge/response
    round trip per audited bill (grievances, if any, ride the same
    pattern).  Everything else overlaps with computation.
    """
    if message_latency < 0:
        raise ValueError("message latency must be non-negative")
    return (2 * m + 2 * audited) * message_latency


def return_phase_duration(network: LinearNetwork, alpha: np.ndarray, result_ratio: float) -> float:
    """Duration of the result-return pipeline (relaxing assumption (iii)).

    With results of size ``result_ratio * alpha_j`` relayed back to the
    root store-and-forward, reverse link ``k`` carries
    ``result_ratio * D_k`` units, so the pipeline takes
    ``result_ratio * sum_k D_k z_k`` — ``result_ratio`` times the
    schedule's total forward communication time.
    """
    if result_ratio < 0:
        raise ValueError("result ratio must be non-negative")
    arr = np.asarray(alpha, dtype=np.float64)
    d = received_loads(arr)
    if arr.size == 1:
        return 0.0
    return float(result_ratio * np.sum(d[1:] * network.z))
