"""Finishing-time model for the boundary-rooted linear network.

Implements equations (2.1) and (2.2) of the paper:

.. math::

    T_0(\\alpha) = \\alpha_0 w_0

    T_j(\\alpha) = \\sum_{k=1}^{j} \\Big(1 - \\sum_{\\ell=0}^{k-1}
        \\alpha_\\ell\\Big) z_k + \\alpha_j w_j \\quad (\\alpha_j > 0)

with :math:`T_j = 0` when :math:`\\alpha_j = 0`.  The inner sums are the
received loads :math:`D_k`, and the outer sum telescopes into a cumulative
sum, so the whole vector is computed in one vectorized pass.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidAllocationError
from repro.network.topology import LinearNetwork

__all__ = [
    "received_loads",
    "finishing_times",
    "makespan",
    "is_optimal_allocation",
    "validate_allocation",
]

#: Relative tolerance used when checking allocation/optimality invariants.
DEFAULT_RTOL = 1e-9


def validate_allocation(alpha: np.ndarray, *, total: float = 1.0, rtol: float = DEFAULT_RTOL) -> np.ndarray:
    """Check that ``alpha`` is a feasible allocation and return it as an array.

    Raises
    ------
    InvalidAllocationError
        If any fraction is negative or the fractions do not sum to
        ``total`` within ``rtol``.
    """
    arr = np.asarray(alpha, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise InvalidAllocationError(f"allocation must be a non-empty vector, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise InvalidAllocationError("allocation must be finite")
    if np.any(arr < -rtol * max(total, 1.0)):
        raise InvalidAllocationError(f"allocation has negative entries: {arr[arr < 0]}")
    s = float(arr.sum())
    if not np.isclose(s, total, rtol=rtol, atol=rtol * max(total, 1.0)):
        raise InvalidAllocationError(f"allocation sums to {s}, expected {total}")
    return arr


def received_loads(alpha: np.ndarray) -> np.ndarray:
    """The loads ``D_j = 1 - sum_{k<j} alpha_k`` received by each processor.

    ``D_0 == sum(alpha)`` (the root handles the entire load); the returned
    vector has the same length as ``alpha``.  Tiny negative values from
    floating-point cancellation are clipped to zero.
    """
    arr = np.asarray(alpha, dtype=np.float64)
    total = arr.sum()
    d = total - np.concatenate(([0.0], np.cumsum(arr[:-1])))
    return np.maximum(d, 0.0)


def finishing_times(network: LinearNetwork, alpha: np.ndarray, *, w: np.ndarray | None = None) -> np.ndarray:
    """Finishing times ``T_i(alpha)`` for every processor (eqs. 2.1/2.2).

    Parameters
    ----------
    network:
        The linear network supplying link rates ``z`` (and default ``w``).
    alpha:
        Global load fractions.  Need not be optimal — the mechanism's
        property checks evaluate perturbed allocations too.
    w:
        Optional override for the processing times (used to evaluate a
        schedule computed from *bids* at the *actual* speeds
        ``w_tilde >= t``).

    Returns
    -------
    numpy.ndarray
        ``T`` with ``T[j] == 0`` wherever ``alpha[j] == 0`` (idle
        processors finish instantly, per eq. 2.2).
    """
    arr = np.asarray(alpha, dtype=np.float64)
    if arr.size != network.size:
        raise InvalidAllocationError(
            f"allocation length {arr.size} does not match network size {network.size}"
        )
    w_arr = network.w if w is None else np.asarray(w, dtype=np.float64)
    d = received_loads(arr)
    t = np.empty_like(arr)
    t[0] = arr[0] * w_arr[0]
    if arr.size > 1:
        # Communication prefix: sum_{k=1..j} D_k z_k, vectorized.
        comm = np.cumsum(d[1:] * network.z)
        t[1:] = comm + arr[1:] * w_arr[1:]
        t[1:][arr[1:] == 0.0] = 0.0
    return t


def makespan(network: LinearNetwork, alpha: np.ndarray, *, w: np.ndarray | None = None) -> float:
    """Total execution time ``T(alpha) = max_i T_i(alpha)``."""
    return float(finishing_times(network, alpha, w=w).max())


def is_optimal_allocation(network: LinearNetwork, alpha: np.ndarray, *, rtol: float = 1e-7) -> bool:
    """Check the optimality signature of Theorem 2.1.

    The optimal solution has *all* processors participating
    (``alpha_i > 0``) and finishing at the same instant.
    """
    arr = validate_allocation(np.asarray(alpha, dtype=np.float64))
    if np.any(arr <= 0.0):
        return False
    t = finishing_times(network, arr)
    return bool(np.allclose(t, t[0], rtol=rtol, atol=rtol))
