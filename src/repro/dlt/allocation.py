"""Schedule result types returned by the DLT solvers.

Each solver returns an immutable record holding the allocation vector(s),
the equivalent processing times produced by the recursive reduction, and
the resulting makespan.  For the linear network the quantities mirror the
paper's notation exactly: ``alpha`` (eq. 2.5/2.6), ``alpha_hat`` (local
fractions of received load), ``w_eq[i]`` = :math:`\\bar w_i` (eq. 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.topology import BusNetwork, LinearNetwork, StarNetwork, TreeNetwork

__all__ = ["LinearSchedule", "InteriorSchedule", "StarSchedule", "TreeSchedule"]


def _frozen(arr: np.ndarray) -> np.ndarray:
    out = np.asarray(arr, dtype=np.float64)
    out.flags.writeable = False
    return out


@dataclass(frozen=True)
class LinearSchedule:
    """Optimal schedule for a boundary-rooted linear network.

    Attributes
    ----------
    network:
        The network the schedule was computed for.
    alpha:
        Global load fractions ``alpha_i`` (sum to 1).
    alpha_hat:
        Local fractions of *received* load retained by each processor;
        ``alpha_hat[m] == 1``.
    received:
        ``D_i``, the fraction of the original load that reaches ``P_i``
        (``D_0 == 1``).
    w_eq:
        Equivalent processing times ``w_bar_i`` of the collapsed segment
        ``P_i .. P_m`` (eq. 2.4); ``w_eq[0]`` equals the makespan for a
        unit load.
    makespan:
        Total execution time ``T(alpha)`` for a unit load.
    """

    network: LinearNetwork
    alpha: np.ndarray
    alpha_hat: np.ndarray
    received: np.ndarray
    w_eq: np.ndarray
    makespan: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "alpha", _frozen(self.alpha))
        object.__setattr__(self, "alpha_hat", _frozen(self.alpha_hat))
        object.__setattr__(self, "received", _frozen(self.received))
        object.__setattr__(self, "w_eq", _frozen(self.w_eq))

    @property
    def size(self) -> int:
        return int(self.alpha.size)

    def scaled(self, load: float) -> np.ndarray:
        """Absolute load amounts for a total load of ``load`` units."""
        return self.alpha * float(load)


@dataclass(frozen=True)
class InteriorSchedule:
    """Optimal schedule for a linear network with interior load origination.

    The root splits the chain into a *left arm* and a *right arm*; each arm
    is collapsed into an equivalent processor (Fig. 3 reduction) and the
    root distributes to them sequentially under the one-port constraint.

    Attributes
    ----------
    alpha:
        Global fractions indexed in chain order (left terminal .. right
        terminal), summing to 1.
    root_index:
        Position of the originating processor within the chain.
    order:
        Arm service order chosen by the solver, a tuple of ``"left"`` /
        ``"right"``.
    makespan:
        Total execution time for a unit load.
    """

    w: np.ndarray
    z: np.ndarray
    root_index: int
    alpha: np.ndarray
    order: tuple[str, ...]
    makespan: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "w", _frozen(self.w))
        object.__setattr__(self, "z", _frozen(self.z))
        object.__setattr__(self, "alpha", _frozen(self.alpha))


@dataclass(frozen=True)
class StarSchedule:
    """Optimal schedule for a single-level tree (star) network.

    Attributes
    ----------
    alpha:
        Fractions ``(alpha_0, ..., alpha_n)`` with ``alpha[0]`` the root's
        own share; children are served in ``order``.
    order:
        Permutation of child indices ``1..n`` giving the one-port
        distribution sequence.
    makespan:
        Total execution time for a unit load; equals the equivalent
        processing time of the whole star.
    """

    network: StarNetwork | BusNetwork
    alpha: np.ndarray
    order: tuple[int, ...]
    makespan: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "alpha", _frozen(self.alpha))


@dataclass(frozen=True)
class TreeSchedule:
    """Optimal schedule for a rooted tree network.

    Attributes
    ----------
    alpha:
        Fractions per node in preorder (root first).
    labels:
        Node labels in the same preorder.
    w_eq_root:
        Equivalent processing time of the whole collapsed tree.
    makespan:
        Total execution time for a unit load (== ``w_eq_root``).
    """

    network: TreeNetwork
    alpha: np.ndarray
    labels: tuple[str | None, ...]
    w_eq_root: float
    makespan: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "alpha", _frozen(self.alpha))
