"""Linear network with *interior* load origination.

The paper defines both flavours of linear network (Section 2) but its
mechanism handles the boundary case; the interior case is part of the
announced future work (Section 6).  We provide the scheduling substrate
for it: the root ``P_r`` sits between a left arm ``P_{r-1} .. P_0`` and a
right arm ``P_{r+1} .. P_n``.  Each arm, viewed from the root, is a
boundary-rooted chain and collapses (Fig. 3) into an equivalent processor
hanging off the root's adjacent link.  The root then faces a two-child
star under the one-port constraint; both service orders are evaluated and
the better one kept.  Arm-internal fractions are unrolled from each arm's
own boundary schedule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dlt.allocation import InteriorSchedule, LinearSchedule
from repro.dlt.batch import solve_linear_cached
from repro.dlt.star import solve_star
from repro.exceptions import InvalidNetworkError
from repro.network.topology import LinearNetwork, StarNetwork

__all__ = ["solve_linear_interior"]


def _arm_schedule(w: np.ndarray, z: np.ndarray) -> LinearSchedule | None:
    """Boundary schedule of an arm given rates ordered outward from the
    root's neighbour; ``None`` for an empty arm.

    Arm solves go through the LRU cache: a best-root sweep over one
    chain (experiment X2's ``linear-best-root`` row) re-solves every
    arm prefix/suffix it already saw at the neighbouring root position,
    and the returned schedule is frozen and used read-only here
    (``makespan`` and ``alpha``), so sharing the cached instance is
    safe."""
    if w.size == 0:
        return None
    return solve_linear_cached(LinearNetwork(w, z))


def solve_linear_interior(
    w: Sequence[float],
    z: Sequence[float],
    root_index: int,
) -> InteriorSchedule:
    """Solve the interior-origination linear problem.

    Parameters
    ----------
    w:
        Unit processing times of the chain ``P_0 .. P_n`` in chain order.
    z:
        Unit link times ``z_1 .. z_n`` (``z[i-1]`` joins ``P_{i-1}``/``P_i``).
    root_index:
        Position ``r`` of the originating processor, ``0 <= r <= n``.
        Boundary positions are accepted and reduce to the boundary solver.

    Returns
    -------
    InteriorSchedule
        Fractions in chain order; ``order`` records which arm was served
        first.
    """
    w_arr = np.asarray(w, dtype=np.float64)
    z_arr = np.asarray(z, dtype=np.float64)
    n = w_arr.size - 1
    if not (0 <= root_index <= n):
        raise InvalidNetworkError(f"root_index {root_index} out of range for {n + 1} processors")

    # Left arm outward: processors r-1, r-2, ..., 0 with links
    # z_{r-1}, ..., z_1 between them (z_r connects the root to the arm head).
    left = _arm_schedule(
        w_arr[:root_index][::-1].copy(),
        z_arr[: root_index - 1][::-1].copy() if root_index >= 2 else np.empty(0),
    )
    left_link = float(z_arr[root_index - 1]) if root_index >= 1 else None
    # Right arm outward: processors r+1, ..., n with links z_{r+2}, ..., z_n.
    right = _arm_schedule(w_arr[root_index + 1 :].copy(), z_arr[root_index + 1 :].copy())
    right_link = float(z_arr[root_index]) if root_index <= n - 1 else None

    arms: list[tuple[str, float, LinearSchedule]] = []
    if left is not None:
        assert left_link is not None
        arms.append(("left", left_link, left))
    if right is not None:
        assert right_link is not None
        arms.append(("right", right_link, right))

    alpha = np.zeros(n + 1, dtype=np.float64)
    if not arms:
        alpha[root_index] = 1.0
        return InteriorSchedule(
            w=w_arr, z=z_arr, root_index=root_index, alpha=alpha,
            order=(), makespan=float(w_arr[root_index]),
        )

    star_w = np.array([w_arr[root_index]] + [arm.makespan for _, _, arm in arms])
    star_z = np.array([link for _, link, _ in arms])
    star_net = StarNetwork(star_w, star_z)

    best: tuple[float, tuple[int, ...]] | None = None
    for order in _orders(len(arms)):
        sched = solve_star(star_net, order=order)
        if best is None or sched.makespan < best[0] - 1e-15:
            best = (sched.makespan, order)
    assert best is not None
    star = solve_star(star_net, order=best[1])

    alpha[root_index] = star.alpha[0]
    for pos, (side, _link, arm) in enumerate(arms, start=1):
        share = float(star.alpha[pos])
        if side == "left":
            # Arm indices outward from root: r-1, r-2, ..., 0.
            indices = np.arange(root_index - 1, -1, -1)
        else:
            indices = np.arange(root_index + 1, n + 1)
        alpha[indices] = share * arm.alpha

    order_names = tuple(arms[idx - 1][0] for idx in star.order)
    return InteriorSchedule(
        w=w_arr,
        z=z_arr,
        root_index=root_index,
        alpha=alpha,
        order=order_names,
        makespan=star.makespan,
    )


def _orders(n_arms: int):
    if n_arms == 1:
        yield (1,)
    else:
        yield (1, 2)
        yield (2, 1)
