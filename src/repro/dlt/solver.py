"""Top-level solver dispatch: ``solve(network)`` for any architecture.

A convenience facade over the per-architecture solvers so callers can
schedule whatever network object they hold:

>>> from repro.network.topology import LinearNetwork
>>> from repro.dlt.solver import solve
>>> solve(LinearNetwork(w=[2.0, 2.0], z=[1.0])).makespan
1.2
"""

from __future__ import annotations

from functools import singledispatch

from repro.dlt.allocation import LinearSchedule, StarSchedule, TreeSchedule
from repro.dlt.bus import solve_bus
from repro.dlt.linear import solve_linear_boundary
from repro.dlt.star import solve_star
from repro.dlt.tree import solve_tree
from repro.network.topology import BusNetwork, LinearNetwork, StarNetwork, TreeNetwork
from repro.obs.perf import span as perf_span

__all__ = ["solve"]


# The facade carries the per-architecture perf spans; the raw kernels
# (solve_linear_boundary and friends) stay uninstrumented because hot
# scalar loops call them thousands of times and a span per call would
# move the very benchmarks the spans exist to explain.


@singledispatch
def solve(network):
    """Solve the divisible-load problem for ``network`` (unit load).

    Dispatches on the network type; raises :class:`TypeError` for
    anything that is not a known architecture.
    """
    raise TypeError(f"no divisible-load solver for {type(network).__name__}")


@solve.register
def _(network: LinearNetwork) -> LinearSchedule:
    with perf_span("solve.linear"):
        return solve_linear_boundary(network)


@solve.register
def _(network: StarNetwork) -> StarSchedule:
    with perf_span("solve.star"):
        return solve_star(network)


@solve.register
def _(network: BusNetwork) -> StarSchedule:
    with perf_span("solve.bus"):
        return solve_bus(network)


@solve.register
def _(network: TreeNetwork) -> TreeSchedule:
    with perf_span("solve.tree"):
        return solve_tree(network)
