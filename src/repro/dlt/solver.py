"""Top-level solver dispatch: ``solve(network)`` for any architecture.

A convenience facade over the per-architecture solvers so callers can
schedule whatever network object they hold:

>>> from repro.network.topology import LinearNetwork
>>> from repro.dlt.solver import solve
>>> solve(LinearNetwork(w=[2.0, 2.0], z=[1.0])).makespan
1.2
"""

from __future__ import annotations

from functools import singledispatch

from repro.dlt.allocation import LinearSchedule, StarSchedule, TreeSchedule
from repro.dlt.bus import solve_bus
from repro.dlt.linear import solve_linear_boundary
from repro.dlt.star import solve_star
from repro.dlt.tree import solve_tree
from repro.network.topology import BusNetwork, LinearNetwork, StarNetwork, TreeNetwork

__all__ = ["solve"]


@singledispatch
def solve(network):
    """Solve the divisible-load problem for ``network`` (unit load).

    Dispatches on the network type; raises :class:`TypeError` for
    anything that is not a known architecture.
    """
    raise TypeError(f"no divisible-load solver for {type(network).__name__}")


@solve.register
def _(network: LinearNetwork) -> LinearSchedule:
    return solve_linear_boundary(network)


@solve.register
def _(network: StarNetwork) -> StarSchedule:
    return solve_star(network)


@solve.register
def _(network: BusNetwork) -> StarSchedule:
    return solve_bus(network)


@solve.register
def _(network: TreeNetwork) -> TreeSchedule:
    return solve_tree(network)
