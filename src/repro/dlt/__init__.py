"""Divisible Load Theory (DLT) substrate.

Closed-form optimal schedules for the network architectures used in the
paper and its baselines:

- :func:`~repro.dlt.linear.solve_linear_boundary` — Algorithm 1
  (LINEAR BOUNDARY-LINEAR), the schedule the DLS-LBL mechanism computes.
- :func:`~repro.dlt.linear_interior.solve_linear_interior` — interior
  load origination (Section 2 / future-work variant).
- :func:`~repro.dlt.star.solve_star`, :func:`~repro.dlt.bus.solve_bus`,
  :func:`~repro.dlt.tree.solve_tree` — comparator architectures from the
  authors' prior mechanisms [9, 14].
"""

from repro.dlt.allocation import InteriorSchedule, LinearSchedule, StarSchedule, TreeSchedule
from repro.dlt.batch import (
    BatchLinearSchedule,
    BatchStarSchedule,
    solve_linear_batch,
    solve_linear_cached,
    solve_many,
    solve_star_batch,
    stack_networks,
)
from repro.dlt.bus import solve_bus
from repro.dlt.linear import equivalent_time, solve_linear_boundary
from repro.dlt.linear_interior import solve_linear_interior
from repro.dlt.reduction import collapse_segment, reduce_pair
from repro.dlt.solver import solve
from repro.dlt.star import solve_star
from repro.dlt.timing import (
    finishing_times,
    is_optimal_allocation,
    makespan,
    received_loads,
    validate_allocation,
)
from repro.dlt.tree import solve_tree

__all__ = [
    "BatchLinearSchedule",
    "BatchStarSchedule",
    "InteriorSchedule",
    "LinearSchedule",
    "StarSchedule",
    "TreeSchedule",
    "collapse_segment",
    "equivalent_time",
    "finishing_times",
    "is_optimal_allocation",
    "makespan",
    "received_loads",
    "reduce_pair",
    "solve",
    "solve_bus",
    "solve_linear_batch",
    "solve_linear_boundary",
    "solve_linear_cached",
    "solve_linear_interior",
    "solve_many",
    "solve_star",
    "solve_star_batch",
    "solve_tree",
    "stack_networks",
    "validate_allocation",
]
