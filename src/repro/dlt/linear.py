"""Algorithm 1: LINEAR BOUNDARY-LINEAR.

Solves the divisible-load scheduling problem on a boundary-rooted linear
network by recursive reduction (Section 2 of the paper):

1. Backward pass (steps 1–6): starting from the terminal ``P_m``
   (``alpha_hat_m = 1``, ``w_bar_m = w_m``), repeatedly collapse the two
   processors farthest from the root with

   .. math::

       \\hat\\alpha_i = \\frac{\\bar w_{i+1} + z_{i+1}}
                             {w_i + \\bar w_{i+1} + z_{i+1}}
       \\qquad\\text{(eq. 2.7)},
       \\qquad \\bar w_i = \\hat\\alpha_i w_i \\text{ (eq. 2.4)}.

2. Forward pass (steps 7–10): unroll the local fractions into global
   fractions ``alpha_i = D_i * alpha_hat_i`` with
   ``D_i = prod_{k<i}(1 - alpha_hat_k)`` (eqs. 2.5/2.6).

The backward pass is a genuine scalar recurrence, so it is a Python loop
over ``m`` steps; the forward pass is vectorized with ``cumprod``.  A
straight-from-the-paper reference implementation is kept alongside and the
two are checked against each other by property tests.
"""

from __future__ import annotations

import numpy as np

from repro.dlt.allocation import LinearSchedule
from repro.dlt.timing import finishing_times
from repro.network.topology import LinearNetwork

__all__ = [
    "solve_linear_boundary",
    "equivalent_time",
    "phase1_bids",
    "backward_pass",
    "alpha_from_alpha_hat",
]


def backward_pass(w: np.ndarray, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The backward reduction recurrence (Algorithm 1 steps 1–6) as an
    array kernel.

    Accepts ``w`` of shape ``(..., m+1)`` and ``z`` of shape ``(..., m)``
    with arbitrary (matching) leading batch dimensions and returns
    ``(alpha_hat, w_eq)`` of shape ``(..., m+1)``.  The recurrence is
    inherently sequential in ``m``, so the loop runs over the chain axis;
    every step is elementwise over the batch axes, which is what makes
    :mod:`repro.dlt.batch` fast.  The arithmetic per element is identical
    to the scalar path, so batched and scalar results agree bitwise.
    """
    w_arr = np.asarray(w, dtype=np.float64)
    z_arr = np.asarray(z, dtype=np.float64)
    m = w_arr.shape[-1] - 1
    alpha_hat = np.empty_like(w_arr)
    w_eq = np.empty_like(w_arr)
    alpha_hat[..., m] = 1.0
    w_eq[..., m] = w_arr[..., m]
    prev = np.array(w_arr[..., m])
    for i in range(m - 1, -1, -1):
        tail = prev + z_arr[..., i]
        hat = tail / (w_arr[..., i] + tail)
        alpha_hat[..., i] = hat
        prev = hat * w_arr[..., i]
        w_eq[..., i] = prev
    return alpha_hat, w_eq


def phase1_bids(network: LinearNetwork) -> tuple[np.ndarray, np.ndarray]:
    """The backward reduction pass (Algorithm 1 steps 1–6).

    Returns ``(alpha_hat, w_eq)`` where ``w_eq[i]`` is the equivalent
    processing time :math:`\\bar w_i` of the collapsed segment
    ``P_i .. P_m``.  This is exactly the computation each processor
    performs locally in Phase I of the DLS-LBL mechanism, evaluated here
    for the whole chain at once.
    """
    m = network.m
    # The recurrence is inherently sequential; numpy scalar indexing in a
    # tight loop is slower than plain floats (measured — see the P1
    # benchmark), so the single-network loop runs on Python lists and only
    # the forward pass is vectorized.  The batched kernel
    # (:func:`backward_pass`) performs the same IEEE operations per
    # element, so the two paths agree bitwise (differential-tested).
    w = network.w.tolist()
    z = network.z.tolist()
    alpha_hat = [0.0] * (m + 1)
    w_eq = [0.0] * (m + 1)
    alpha_hat[m] = 1.0
    w_eq[m] = w[m]
    prev = w[m]
    for i in range(m - 1, -1, -1):
        tail = prev + z[i]
        hat = tail / (w[i] + tail)
        alpha_hat[i] = hat
        prev = hat * w[i]
        w_eq[i] = prev
    return np.asarray(alpha_hat), np.asarray(w_eq)


def alpha_from_alpha_hat(alpha_hat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The forward unrolling pass (Algorithm 1 steps 7–10), vectorized.

    Returns ``(alpha, received)`` where ``received[i]`` is ``D_i``, the
    fraction of the original load arriving at ``P_i``.  Operates on the
    last axis, so stacked ``(..., m+1)`` inputs unroll all instances at
    once.
    """
    hat = np.asarray(alpha_hat, dtype=np.float64)
    ones = np.ones(hat.shape[:-1] + (1,), dtype=np.float64)
    received = np.concatenate((ones, np.cumprod(1.0 - hat[..., :-1], axis=-1)), axis=-1)
    return received * hat, received


def solve_linear_boundary(network: LinearNetwork) -> LinearSchedule:
    """Solve LINEAR BOUNDARY-LINEAR for ``network`` (Algorithm 1).

    Returns the optimal :class:`~repro.dlt.allocation.LinearSchedule`; by
    Theorem 2.1 every processor participates and all finishing times equal
    the makespan ``w_eq[0]``.

    Examples
    --------
    >>> net = LinearNetwork(w=[2.0, 2.0], z=[1.0])
    >>> sched = solve_linear_boundary(net)
    >>> float(round(sched.alpha[0], 4))
    0.6
    >>> float(round(sched.makespan, 4))
    1.2
    """
    from repro.obs.metrics import get_registry

    get_registry().inc("dlt.scalar.linear_solves")
    alpha_hat, w_eq = phase1_bids(network)
    alpha, received = alpha_from_alpha_hat(alpha_hat)
    return LinearSchedule(
        network=network,
        alpha=alpha,
        alpha_hat=alpha_hat,
        received=received,
        w_eq=w_eq,
        makespan=float(w_eq[0]),
    )


def equivalent_time(network: LinearNetwork) -> float:
    """Equivalent processing time :math:`\\bar w_0` of the whole chain —
    the time the collapsed single processor takes per unit load
    (eq. 2.3/2.4)."""
    _, w_eq = phase1_bids(network)
    return float(w_eq[0])


def solve_linear_boundary_reference(network: LinearNetwork) -> LinearSchedule:
    """Literal transcription of Algorithm 1 (pure Python, no vectorization).

    Kept as an executable specification; tests assert it agrees with
    :func:`solve_linear_boundary` to machine precision.
    """
    w = [float(x) for x in network.w]
    z = [float(x) for x in network.z]
    m = network.m
    alpha_hat = [0.0] * (m + 1)
    w_bar = [0.0] * (m + 1)
    alpha_hat[m] = 1.0
    w_bar[m] = w[m]
    for i in range(m - 1, -1, -1):
        alpha_hat[i] = (w_bar[i + 1] + z[i]) / (w[i] + w_bar[i + 1] + z[i])
        w_bar[i] = alpha_hat[i] * w[i]
    alpha = [0.0] * (m + 1)
    received = [0.0] * (m + 1)
    d = 1.0
    for i in range(m + 1):
        received[i] = d
        alpha[i] = d * alpha_hat[i]
        d = d * (1.0 - alpha_hat[i])
    return LinearSchedule(
        network=network,
        alpha=np.array(alpha),
        alpha_hat=np.array(alpha_hat),
        received=np.array(received),
        w_eq=np.array(w_bar),
        makespan=w_bar[0],
    )


def verify_schedule(schedule: LinearSchedule, *, rtol: float = 1e-9) -> bool:
    """Sanity-check a schedule against the timing model: all finishing
    times must equal the makespan (Theorem 2.1 signature)."""
    t = finishing_times(schedule.network, schedule.alpha)
    return bool(np.allclose(t, schedule.makespan, rtol=rtol, atol=rtol * max(1.0, schedule.makespan)))
