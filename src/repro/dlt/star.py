"""Optimal divisible-load schedule for single-level tree (star) networks.

The root ``P_0`` holds the load, computes a share itself, and distributes
to children sequentially under the one-port model; children have
front-ends and start computing once their whole share has arrived.  With
the linear cost model, the optimal schedule has every participant finish
simultaneously (the star analogue of Theorem 2.1; Bharadwaj et al. [6]).

For a service order :math:`\\sigma`, equal finishing times give the chain
of ratios

.. math::

    \\alpha_{\\sigma_1} (z_{\\sigma_1} + w_{\\sigma_1}) = \\alpha_0 w_0,
    \\qquad
    \\alpha_{\\sigma_k} (z_{\\sigma_k} + w_{\\sigma_k}) =
        \\alpha_{\\sigma_{k-1}} w_{\\sigma_{k-1}},

which normalizes in one ``cumprod``.  The classical sequencing result
says serving children in non-decreasing link time ``z`` is optimal
(independent of the ``w``); :func:`solve_star` uses that order by default
and tests cross-check it against brute force over all permutations.
"""

from __future__ import annotations

import math
from itertools import permutations
from typing import Literal, Sequence

import numpy as np

from repro.dlt.allocation import StarSchedule
from repro.exceptions import SolverError
from repro.network.topology import BusNetwork, StarNetwork

__all__ = [
    "solve_star",
    "star_alpha_kernel",
    "star_makespan_for_order",
    "optimal_order_bruteforce",
]

OrderPolicy = Literal["by-link", "given", "bruteforce"]


def star_alpha_kernel(w: np.ndarray, z: np.ndarray, order_cols: np.ndarray) -> np.ndarray:
    """Equal-finish allocation as an array kernel.

    Accepts ``w`` of shape ``(..., n+1)``, ``z`` of shape ``(..., n)``
    and ``order_cols`` of shape ``(..., n)`` — integer child indices
    ``1..n`` in service order, per instance — with arbitrary matching
    leading batch dimensions; returns ``alpha`` of shape ``(..., n+1)``.
    No validation is performed on ``order_cols`` (the callers own it).
    """
    w_arr = np.asarray(w, dtype=np.float64)
    z_arr = np.asarray(z, dtype=np.float64)
    cols = np.asarray(order_cols)
    served_w = np.take_along_axis(w_arr, cols, axis=-1)
    # ratio[k] = alpha_{sigma_k} / alpha_0, built by cumulative product.
    prev_w = np.concatenate((w_arr[..., :1], served_w[..., :-1]), axis=-1)
    denom = np.take_along_axis(z_arr, cols - 1, axis=-1) + served_w
    ratios = np.cumprod(prev_w / denom, axis=-1)
    alpha = np.empty_like(w_arr)
    alpha[..., :1] = 1.0 / (1.0 + ratios.sum(axis=-1, keepdims=True))
    np.put_along_axis(alpha, cols, alpha[..., :1] * ratios, axis=-1)
    return alpha


def _alpha_for_order(network: StarNetwork, order: Sequence[int]) -> np.ndarray:
    """Allocation (root first) for service order ``order`` (child indices
    ``1..n``), normalized to a unit load."""
    w = network.w
    z = network.z
    order = list(order)
    n = network.n_children
    if sorted(order) != list(range(1, n + 1)):
        raise SolverError(f"order must be a permutation of 1..{n}, got {order}")
    # ratio[k] = alpha_{sigma_k} / alpha_0, built by cumulative product.
    prev_w = np.concatenate(([w[0]], w[order][:-1] if n > 1 else []))
    denom = z[np.array(order) - 1] + w[order]
    ratios = np.cumprod(prev_w / denom)
    alpha = np.empty(n + 1, dtype=np.float64)
    # math.fsum: the normalization is the one accumulation-order-sensitive
    # sum in this solver; exact summation keeps it independent of n.
    alpha[0] = 1.0 / (1.0 + math.fsum(ratios))
    alpha[order] = alpha[0] * ratios
    return alpha


def star_makespan_for_order(network: StarNetwork, order: Sequence[int]) -> float:
    """Makespan of the equal-finish schedule under service order ``order``."""
    alpha = _alpha_for_order(network, order)
    return float(alpha[0] * network.w[0])


def optimal_order_bruteforce(network: StarNetwork) -> tuple[int, ...]:
    """Exhaustively find the makespan-minimizing service order.

    Exponential in the number of children — meant for tests and small
    instances (the default ``by-link`` policy is the closed-form optimum).
    """
    best: tuple[float, tuple[int, ...]] | None = None
    for perm in permutations(range(1, network.size)):
        t = star_makespan_for_order(network, perm)
        if best is None or t < best[0] - 1e-15:
            best = (t, perm)
    assert best is not None
    return best[1]


def solve_star(
    network: StarNetwork | BusNetwork,
    *,
    order: OrderPolicy | Sequence[int] = "by-link",
) -> StarSchedule:
    """Solve the star (or bus) divisible-load problem.

    Parameters
    ----------
    network:
        A :class:`StarNetwork`, or a :class:`BusNetwork` (treated as a
        star whose links all equal the bus rate).
    order:
        ``"by-link"`` (default) serves children in non-decreasing link
        time; ``"bruteforce"`` tries all permutations; an explicit
        sequence of child indices uses that order verbatim.

    Returns
    -------
    StarSchedule
    """
    if isinstance(network, BusNetwork):
        network = network.as_star()
    if isinstance(order, str):
        if order == "by-link":
            chosen = tuple(int(i) for i in np.argsort(network.z, kind="stable") + 1)
        elif order == "bruteforce":
            chosen = optimal_order_bruteforce(network)
        else:
            raise SolverError(f"unknown order policy {order!r}")
    else:
        chosen = tuple(int(i) for i in order)
    alpha = _alpha_for_order(network, chosen)
    return StarSchedule(
        network=network,
        alpha=alpha,
        order=chosen,
        makespan=float(alpha[0] * network.w[0]),
    )


def star_finishing_times(network: StarNetwork, alpha: np.ndarray, order: Sequence[int]) -> np.ndarray:
    """Finishing times of root and children for an arbitrary allocation —
    used by tests to confirm the equal-finish signature."""
    w = network.w
    z = network.z
    t = np.zeros(network.size)
    t[0] = alpha[0] * w[0]
    # One-port clock: cumulative transmission time in service order.
    # np.cumsum accumulates left-to-right exactly like the former scalar
    # += loop, so results are bit-identical — just vectorized.
    idx = np.asarray(order, dtype=np.intp)
    clock = np.cumsum(alpha[idx] * z[idx - 1])
    t[idx] = clock + alpha[idx] * w[idx]
    return t
