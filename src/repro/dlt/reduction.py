"""Equivalent-processor reduction (Fig. 3 of the paper).

*Reduction* collapses a set of connected processors and their internal
links into a single *equivalent processor* whose processing time per unit
load equals the segment's optimal makespan (eqs. 2.3/2.4).  Algorithm 1
is the repeated application of the two-processor reduction
:func:`reduce_pair`; :func:`collapse_segment` collapses an arbitrary
suffix or infix segment and is used by the interior-origination solver
and the Fig. 3 benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.dlt.linear import phase1_bids, solve_linear_boundary
from repro.network.topology import LinearNetwork

__all__ = ["reduce_pair", "collapse_segment", "collapse_suffix", "replace_suffix"]


def reduce_pair(w_head: float, z_link: float, w_tail: float) -> tuple[float, float]:
    """Collapse processors ``(P_i, P_{i+1})`` into one equivalent processor.

    ``w_tail`` may itself be an equivalent processing time, which is how
    the recursion of Algorithm 1 proceeds.

    Returns
    -------
    (alpha_hat, w_eq):
        The head's optimal local fraction (eq. 2.7) and the equivalent
        processing time ``alpha_hat * w_head`` (eq. 2.4).

    Examples
    --------
    >>> alpha_hat, w_eq = reduce_pair(2.0, 1.0, 2.0)
    >>> round(alpha_hat, 4), round(w_eq, 4)
    (0.6, 1.2)
    """
    if w_head <= 0 or z_link <= 0 or w_tail <= 0:
        raise ValueError("rates must be strictly positive")
    tail = w_tail + z_link
    alpha_hat = tail / (w_head + tail)
    return alpha_hat, alpha_hat * w_head


def collapse_suffix(network: LinearNetwork, start: int) -> float:
    """Equivalent processing time of the suffix segment ``P_start .. P_m``.

    This is the :math:`\\bar w_{start}` of Algorithm 1's backward pass.
    """
    _, w_eq = phase1_bids(network)
    return float(w_eq[start])


def collapse_segment(network: LinearNetwork, start: int, stop: int) -> float:
    """Equivalent processing time of the segment ``P_start .. P_stop``.

    The segment is "logically disconnected from the network" (paper,
    Section 2) and solved as a boundary-rooted chain of its own; the
    equivalent time is its makespan per unit load (eq. 2.3 with the
    optimal internal allocation, hence eq. 2.4).
    """
    return solve_linear_boundary(network.segment(start, stop)).makespan


def replace_suffix(network: LinearNetwork, start: int) -> LinearNetwork:
    """The reduced network in which the suffix ``P_start .. P_m`` is
    replaced by a single equivalent processor (Fig. 3 with
    ``s = m - start``).

    The returned network has ``start + 1`` processors: the untouched
    prefix plus the equivalent processor attached by the original link
    ``z_start``.  Solving it yields the same makespan and the same prefix
    allocation as solving the full network (verified by tests and the
    Fig. 3 benchmark).
    """
    if not (1 <= start <= network.m):
        raise ValueError(f"suffix start must be in [1, {network.m}]")
    w_eq = collapse_suffix(network, start)
    w_new = np.concatenate((network.w[:start], [w_eq]))
    z_new = network.z[:start].copy()
    return LinearNetwork(w_new, z_new)
