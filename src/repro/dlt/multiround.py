"""Multi-installment (multiround) star scheduling.

Single-installment DLT makes every child wait for its *entire* share
before computing.  Splitting shares into ``R`` installments lets
children start after the first chunk and overlap the rest — the idea of
the multiround algorithms the paper cites ([21]).  With the paper's
assumption (i) (zero startup) more rounds are always weakly better; with
a per-transmission startup there is an interior optimum, which
experiment X10 charts.

The planner here splits the *single-round optimal* allocation into equal
installments (round-robin over children in link order).  That is not the
fully optimized multiround schedule of [21] — per-round amounts there
follow a geometric progression — so the measured gains are a *lower
bound* on what multiround can achieve; the qualitative shape (gain
saturates in R, startup creates an optimum) is the point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dlt.star import solve_star
from repro.network.topology import StarNetwork
from repro.sim.star_sim import StarSimResult, simulate_star

__all__ = [
    "MultiroundPlan",
    "equal_installment_plan",
    "installment_loads",
    "multiround_makespan",
    "best_round_count",
    "plan_from_allocation",
    "optimize_multiround_allocation",
]


def installment_loads(
    total: float, rounds: int, *, decay: float = 1.0
) -> np.ndarray:
    """Per-round load series summing to ``total``.

    ``decay == 1`` gives equal installments; ``decay < 1`` front-loads
    the series geometrically (round ``r`` carries ``decay**r`` times the
    first round's share), the shape the multiround literature's
    geometric-progression schedules use.  The adaptive-adversary
    dynamics (:mod:`repro.adversary.dynamics`) schedule one installment
    per learning round, so early rounds — where an adversary is still
    exploring — carry the most load and therefore the most regret.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if not 0.0 < decay <= 1.0:
        raise ValueError("decay must be in (0, 1]")
    if total <= 0:
        raise ValueError("total must be positive")
    weights = decay ** np.arange(rounds, dtype=np.float64)
    return total * weights / weights.sum()


@dataclass(frozen=True)
class MultiroundPlan:
    """A concrete distribution plan."""

    rounds: int
    root_share: float
    transmissions: tuple[tuple[int, float], ...]

    @property
    def n_transmissions(self) -> int:
        return len(self.transmissions)


def equal_installment_plan(network: StarNetwork, rounds: int) -> MultiroundPlan:
    """Split the single-round optimal shares into ``rounds`` equal
    installments, served round-robin in link order."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    schedule = solve_star(network, order="by-link")
    transmissions: list[tuple[int, float]] = []
    for _ in range(rounds):
        for child in schedule.order:
            transmissions.append((child, float(schedule.alpha[child]) / rounds))
    return MultiroundPlan(
        rounds=rounds,
        root_share=float(schedule.alpha[0]),
        transmissions=tuple(transmissions),
    )


def multiround_makespan(
    network: StarNetwork, rounds: int, *, startup: float = 0.0, tracer=None
) -> tuple[float, StarSimResult]:
    """Makespan of the equal-installment plan with ``rounds`` rounds.

    When ``tracer`` (a :class:`repro.obs.tracer.Tracer`) is given, the
    run is wrapped in a ``multiround`` span and every Gantt bar of the
    installment simulation is bridged in as a ``sim_interval`` event.
    """
    plan = equal_installment_plan(network, rounds)
    if tracer is None:
        result = simulate_star(network, plan.root_share, plan.transmissions, startup=startup)
        return result.makespan, result
    with tracer.span(
        "multiround",
        n=network.n_children,
        rounds=rounds,
        startup=startup,
        n_transmissions=plan.n_transmissions,
    ) as span:
        result = simulate_star(network, plan.root_share, plan.transmissions, startup=startup)
        result.trace.record_to(tracer)
        span.set(makespan=result.makespan)
    return result.makespan, result


def plan_from_allocation(
    network: StarNetwork, alpha: np.ndarray, rounds: int
) -> MultiroundPlan:
    """Equal-installment plan for an *arbitrary* allocation vector
    (root first), children served round-robin in link order."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    order = tuple(int(i) for i in np.argsort(network.z, kind="stable") + 1)
    transmissions: list[tuple[int, float]] = []
    for _ in range(rounds):
        for child in order:
            amount = float(alpha[child]) / rounds
            if amount > 0:
                transmissions.append((child, amount))
    return MultiroundPlan(
        rounds=rounds,
        root_share=float(alpha[0]),
        transmissions=tuple(transmissions),
    )


def optimize_multiround_allocation(
    network: StarNetwork,
    rounds: int,
    *,
    startup: float = 0.0,
    maxiter: int = 400,
) -> tuple[np.ndarray, float]:
    """Numerically re-optimize the allocation for the ``rounds``-round
    structure (Nelder–Mead over a softmax-parameterized simplex; the
    single-round optimum seeds the search).

    With installments, children start computing after their *first*
    chunk, so they can absorb more load than the single-round equal-finish
    split gives them — the root keeps less and the makespan drops.  This
    is where the multiround gain of [21] actually comes from.
    """
    from scipy.optimize import minimize

    single = solve_star(network, order="by-link")

    def to_simplex(x: np.ndarray) -> np.ndarray:
        e = np.exp(x - x.max())
        return e / e.sum()

    def objective(x: np.ndarray) -> float:
        alpha = to_simplex(x)
        plan = plan_from_allocation(network, alpha, rounds)
        result = simulate_star(network, plan.root_share, plan.transmissions, startup=startup)
        return result.makespan

    x0 = np.log(np.maximum(single.alpha, 1e-12))
    best = minimize(objective, x0, method="Nelder-Mead", options={"maxiter": maxiter, "xatol": 1e-8, "fatol": 1e-10})
    alpha = to_simplex(best.x)
    return alpha, float(best.fun)


def best_round_count(
    network: StarNetwork, *, max_rounds: int = 30, startup: float = 0.0
) -> tuple[int, float]:
    """The round count minimizing the equal-installment makespan.

    Exhaustive over ``1..max_rounds`` — the makespan-vs-R curve is not
    guaranteed unimodal once startup interacts with the pipeline, and the
    range is tiny.
    """
    best_r, best_t = 1, float("inf")
    for r in range(1, max_rounds + 1):
        t, _ = multiround_makespan(network, r, startup=startup)
        if t < best_t - 1e-15:
            best_r, best_t = r, t
    return best_r, best_t
