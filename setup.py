"""Setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which require ``bdist_wheel``) fail.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and
plain ``python setup.py develop``) work with the vendored setuptools.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
